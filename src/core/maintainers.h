#ifndef DEMON_CORE_MAINTAINERS_H_
#define DEMON_CORE_MAINTAINERS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "clustering/birch.h"
#include "core/gemm.h"
#include "core/model_maintainer.h"
#include "data/block.h"
#include "dtree/dtree_maintainer.h"
#include "itemsets/borders.h"
#include "patterns/compact_sequences.h"
#include "persistence/block_codec.h"
#include "persistence/serializer.h"

namespace demon {

/// \brief Adapter turning BIRCH+ into a GEMM maintainer: the sub-cluster
/// set is incrementally maintainable under insertions (paper §3.1.2), and
/// GEMM supplies the most-recent-window semantics BIRCH cannot provide
/// itself (sub-clusters are not maintainable under deletions, §3.2.4).
class ClusterMaintainer {
 public:
  using BlockPtr = std::shared_ptr<const PointBlock>;

  ClusterMaintainer(size_t dim, const BirchOptions& options)
      : birch_(dim, options) {}

  void AddBlock(const BlockPtr& block) { birch_.AddBlock(*block); }

  void set_telemetry(telemetry::TelemetryRegistry* registry) {
    birch_.set_telemetry(registry);
  }

  const ClusterModel& model() const { return birch_.model(); }
  const BirchPlus& birch() const { return birch_; }

  void SaveState(persistence::Writer& w) const { birch_.SaveState(w); }
  [[nodiscard]] Status LoadState(persistence::Reader& r) {
    return birch_.LoadState(r);
  }

 private:
  BirchPlus birch_;
};

/// \brief Trivial maintainer counting records and item occurrences; used
/// by tests to check GEMM's block-routing logic independently of any
/// mining algorithm (GEMM is generic over the model class, §3.2).
class CountingMaintainer {
 public:
  using BlockPtr = std::shared_ptr<const TransactionBlock>;

  void AddBlock(const BlockPtr& block) {
    records_ += block->size();
    occurrences_ += block->TotalItemOccurrences();
    block_ids_.push_back(block->info().id);
  }

  uint64_t records() const { return records_; }
  uint64_t occurrences() const { return occurrences_; }
  const std::vector<BlockId>& block_ids() const { return block_ids_; }

  void SaveState(persistence::Writer& w) const {
    w.WriteU64(records_);
    w.WriteU64(occurrences_);
    w.WriteU32Vector(block_ids_);
  }
  [[nodiscard]] Status LoadState(persistence::Reader& r) {
    records_ = r.ReadU64();
    occurrences_ = r.ReadU64();
    block_ids_ = r.ReadU32Vector();
    return r.status();
  }

 private:
  uint64_t records_ = 0;
  uint64_t occurrences_ = 0;
  std::vector<BlockId> block_ids_;
};

// BordersMaintainer already satisfies the GEMM maintainer concept
// (AddBlock(std::shared_ptr<const TransactionBlock>)); no adapter needed.

// ---------------------------------------------------------------------------
// Evolution tracking: the small amount of per-adapter state behind
// DescribeEvolution. Each adapter computes its EvolutionStats eagerly at
// the end of AddResponse (while the model is fresh and before GEMM's
// offline half starts mutating future windows), so DescribeEvolution is a
// const, idempotent read the engine can take at any quiesced point.

/// \brief Identity-diff tracker: remembers the sorted element set from
/// the previous block and turns the current set into adds/removes/churn
/// (see EvolutionStats for the exact definitions). `T` needs operator<;
/// Observe sorts its input, so callers pass elements in any order.
template <typename T>
class SetEvolutionTracker {
 public:
  void Observe(std::vector<T> current, EvolutionStats* stats) {
    std::sort(current.begin(), current.end());
    size_t added = 0;
    size_t removed = 0;
    size_t i = 0;
    size_t j = 0;
    while (i < prev_.size() && j < current.size()) {
      if (prev_[i] < current[j]) {
        ++removed;
        ++i;
      } else if (current[j] < prev_[i]) {
        ++added;
        ++j;
      } else {
        ++i;
        ++j;
      }
    }
    removed += prev_.size() - i;
    added += current.size() - j;
    stats->blocks = ++blocks_;
    stats->elements = current.size();
    stats->added = added;
    stats->removed = removed;
    const size_t denom = std::max({prev_.size(), current.size(), size_t{1}});
    stats->churn =
        static_cast<double>(added + removed) / static_cast<double>(denom);
    prev_ = std::move(current);
  }

 private:
  uint64_t blocks_ = 0;
  std::vector<T> prev_;
};

/// Count-and-drift evolution for BIRCH+: sub-clusters have no portable
/// identity (centroids move every block), so adds/removes compare entry
/// *counts*, `aux` is the drift of the mean CF radius since the previous
/// block, and `aux2` is the cumulative CF-tree rebuild count.
inline void ObserveClusterEvolution(const BirchPlus& birch, size_t* prev_count,
                                    double* prev_mean_radius,
                                    EvolutionStats* stats) {
  const std::vector<ClusterFeature> subs = birch.Subclusters();
  double mean_radius = 0.0;
  for (const ClusterFeature& cf : subs) mean_radius += cf.Radius();
  if (!subs.empty()) mean_radius /= static_cast<double>(subs.size());
  ++stats->blocks;
  stats->elements = subs.size();
  stats->added = subs.size() > *prev_count ? subs.size() - *prev_count : 0;
  stats->removed = *prev_count > subs.size() ? *prev_count - subs.size() : 0;
  const size_t denom = std::max({*prev_count, subs.size(), size_t{1}});
  stats->churn = static_cast<double>(stats->added + stats->removed) /
                 static_cast<double>(denom);
  stats->aux =
      stats->blocks > 1 ? std::abs(mean_radius - *prev_mean_radius) : 0.0;
  stats->aux_name = "radius_drift";
  stats->aux2 = static_cast<double>(birch.tree().num_rebuilds());
  stats->aux2_name = "rebuilds";
  *prev_count = subs.size();
  *prev_mean_radius = mean_radius;
}

/// Collects one identity string per *internal* node — "<child-path>:<split
/// attribute>" — so the dtree tracker's adds/removes count split churn:
/// a leaf that splits adds one signature, a restructured subtree removes
/// its old signatures and adds the new ones.
inline void CollectSplitSignatures(const DecisionTree::Node* node,
                                   std::string* path,
                                   std::vector<std::string>* out) {
  if (node == nullptr || node->split_attribute < 0) return;
  out->push_back(*path + ":" + std::to_string(node->split_attribute));
  for (size_t i = 0; i < node->children.size(); ++i) {
    const std::string label = std::to_string(i);
    path->push_back('/');
    path->append(label);
    CollectSplitSignatures(node->children[i].get(), path, out);
    path->resize(path->size() - 1 - label.size());
  }
}

// ---------------------------------------------------------------------------
// Type-erased adapters: one thin ModelMaintainer subclass per (model class,
// data-span option) pair, so the MaintenanceEngine can drive BORDERS, GEMM,
// BIRCH+, the decision-tree maintainer and the compact-sequence miner
// through a single virtual interface (Figure 11's fan-out).

/// Unrestricted-window frequent itemsets (BORDERS, §3.1).
class BordersAdapter : public ModelMaintainer {
 public:
  explicit BordersAdapter(const BordersOptions& options)
      : maintainer_(options) {}

  std::string_view type_name() const override { return "borders"; }
  AnyBlock::Payload payload() const override {
    return AnyBlock::Payload::kTransactions;
  }
  void BindThreadPool(ThreadPool* pool) override {
    maintainer_.set_counting_pool(pool);
  }
  void BindTelemetry(telemetry::TelemetryRegistry* registry) override {
    maintainer_.set_telemetry(registry);
  }
  void AddResponse(const AnyBlock& block) override {
    maintainer_.AddBlock(block.transactions());
    tracker_.Observe(maintainer_.model().FrequentItemsets(), &evolution_);
    evolution_.aux = static_cast<double>(maintainer_.model().NumBorder());
    evolution_.aux_name = "negative_border";
  }
  EvolutionStats DescribeEvolution() const override { return evolution_; }
  [[nodiscard]] Result<const ItemsetModel*> itemset_model() const override {
    return &maintainer_.model();
  }
  void AuditInvariants(audit::AuditResult* audit) const override {
    maintainer_.AuditInto(audit);
    maintainer_.AuditRescratchInto(audit);
  }
  [[nodiscard]] Status SaveState(persistence::Writer& w) const override {
    maintainer_.SaveState(w);
    return Status::OK();
  }
  [[nodiscard]] Status LoadState(persistence::Reader& r) override {
    return maintainer_.LoadState(r);
  }

  const BordersMaintainer& borders() const { return maintainer_; }

 private:
  BordersMaintainer maintainer_;
  SetEvolutionTracker<Itemset> tracker_;
  EvolutionStats evolution_;
};

/// Most-recent-window frequent itemsets (GEMM over BORDERS, §3.2). The
/// future-window updates are the offline half (§3.2.3).
class GemmItemsetAdapter : public ModelMaintainer {
 public:
  using GemmT = Gemm<BordersMaintainer, AnyBlock::TxPtr>;

  GemmItemsetAdapter(BlockSelectionSequence bss, size_t window,
                     const BordersOptions& options)
      // The factory reads counting_pool_ / telemetry_registry_ at spawn
      // time, so window models created after BindThreadPool/BindTelemetry
      // count in parallel and trace too. The adapter is heap-allocated and
      // never moved, so capturing `this` is safe.
      : options_(options), gemm_(std::move(bss), window, [this] {
          BordersMaintainer maintainer(options_);
          maintainer.set_counting_pool(counting_pool_);
          maintainer.set_telemetry(telemetry_registry_);
          return maintainer;
        }) {}

  std::string_view type_name() const override { return "gemm-itemsets"; }
  AnyBlock::Payload payload() const override {
    return AnyBlock::Payload::kTransactions;
  }
  void BindThreadPool(ThreadPool* pool) override { counting_pool_ = pool; }
  void BindTelemetry(telemetry::TelemetryRegistry* registry) override {
    telemetry_registry_ = registry;
    gemm_.set_telemetry(registry);
  }
  void AddResponse(const AnyBlock& block) override {
    gemm_.BeginBlock(block.transactions());
    // The user-visible model is whatever window is current *after* the
    // block (a window slide swaps model objects; identity is by itemset
    // contents, so the diff still describes what an observer sees).
    const ItemsetModel& model = gemm_.current().model();
    tracker_.Observe(model.FrequentItemsets(), &evolution_);
    evolution_.aux = static_cast<double>(model.NumBorder());
    evolution_.aux_name = "negative_border";
  }
  EvolutionStats DescribeEvolution() const override { return evolution_; }
  void RunOffline() override { gemm_.DrainOffline(); }
  bool has_offline_work() const override { return gemm_.has_offline_work(); }
  [[nodiscard]] Result<const ItemsetModel*> itemset_model() const override {
    if (gemm_.NumModels() == 0) {
      return Status::FailedPrecondition(
          "windowed monitor has no model before the first block");
    }
    return &gemm_.current().model();
  }
  void AuditInvariants(audit::AuditResult* audit) const override {
    gemm_.AuditInto(
        audit, [&](BlockId start, const std::vector<BlockId>& expected,
                   const BordersMaintainer& maintainer,
                   audit::AuditResult* out) {
          // Coverage: each window model must have absorbed exactly the
          // blocks its right-shifted BSS selects (§3.2.2).
          AUDIT_CHECK(out, "gemm", "gemm/model-coverage",
                      maintainer.NumBlocks() == expected.size(),
                      audit::Msg()
                          << "window model starting at block " << start
                          << " absorbed " << maintainer.NumBlocks()
                          << " blocks; its BSS selects " << expected.size(),
                      "");
          maintainer.AuditInto(out);
        });
    // The decisive merge check — current model only; future-window models
    // get the structural audit above.
    if (gemm_.NumModels() > 0) gemm_.current().AuditRescratchInto(audit);
  }
  [[nodiscard]] Status SaveState(persistence::Writer& w) const override {
    gemm_.SaveState(w);
    return Status::OK();
  }
  [[nodiscard]] Status LoadState(persistence::Reader& r) override {
    const persistence::BlockSource* source = r.block_source();
    if (source == nullptr || !source->transactions) {
      return Status::FailedPrecondition(
          "no transaction block source bound to the reader");
    }
    return gemm_.LoadState(r, source->transactions);
  }

  const GemmT& gemm() const { return gemm_; }

 private:
  // Declared before gemm_: the factory lambda reads these members.
  BordersOptions options_;
  ThreadPool* counting_pool_ = nullptr;
  telemetry::TelemetryRegistry* telemetry_registry_ = nullptr;
  GemmT gemm_;
  SetEvolutionTracker<Itemset> tracker_;
  EvolutionStats evolution_;
};

/// Unrestricted-window clusters (BIRCH+, §3.1.2).
class ClusterAdapter : public ModelMaintainer {
 public:
  ClusterAdapter(size_t dim, const BirchOptions& options)
      : maintainer_(dim, options) {}

  std::string_view type_name() const override { return "birch+"; }
  AnyBlock::Payload payload() const override {
    return AnyBlock::Payload::kPoints;
  }
  void BindTelemetry(telemetry::TelemetryRegistry* registry) override {
    maintainer_.set_telemetry(registry);
  }
  void AddResponse(const AnyBlock& block) override {
    maintainer_.AddBlock(block.points());
    ObserveClusterEvolution(maintainer_.birch(), &prev_count_,
                            &prev_mean_radius_, &evolution_);
  }
  EvolutionStats DescribeEvolution() const override { return evolution_; }
  [[nodiscard]] Result<const ClusterModel*> cluster_model() const override {
    return &maintainer_.model();
  }
  void AuditInvariants(audit::AuditResult* audit) const override {
    maintainer_.birch().tree().AuditInto(audit);
  }
  [[nodiscard]] Status SaveState(persistence::Writer& w) const override {
    maintainer_.SaveState(w);
    return Status::OK();
  }
  [[nodiscard]] Status LoadState(persistence::Reader& r) override {
    return maintainer_.LoadState(r);
  }

  const ClusterMaintainer& clusters() const { return maintainer_; }

 private:
  ClusterMaintainer maintainer_;
  size_t prev_count_ = 0;
  double prev_mean_radius_ = 0.0;
  EvolutionStats evolution_;
};

/// Most-recent-window clusters (GEMM over BIRCH+): the combination §3.2.4
/// motivates, since sub-clusters are not maintainable under deletions.
class GemmClusterAdapter : public ModelMaintainer {
 public:
  using GemmT = Gemm<ClusterMaintainer, AnyBlock::PointPtr>;

  GemmClusterAdapter(BlockSelectionSequence bss, size_t window, size_t dim,
                     const BirchOptions& options)
      // As in GemmItemsetAdapter, the factory reads telemetry_registry_ at
      // spawn time; the adapter is heap-allocated and never moved.
      : gemm_(std::move(bss), window, [this, dim, options] {
          ClusterMaintainer maintainer(dim, options);
          maintainer.set_telemetry(telemetry_registry_);
          return maintainer;
        }) {}

  std::string_view type_name() const override { return "gemm-clusters"; }
  AnyBlock::Payload payload() const override {
    return AnyBlock::Payload::kPoints;
  }
  void BindTelemetry(telemetry::TelemetryRegistry* registry) override {
    telemetry_registry_ = registry;
    gemm_.set_telemetry(registry);
  }
  void AddResponse(const AnyBlock& block) override {
    gemm_.BeginBlock(block.points());
    ObserveClusterEvolution(gemm_.current().birch(), &prev_count_,
                            &prev_mean_radius_, &evolution_);
  }
  EvolutionStats DescribeEvolution() const override { return evolution_; }
  void RunOffline() override { gemm_.DrainOffline(); }
  bool has_offline_work() const override { return gemm_.has_offline_work(); }
  [[nodiscard]] Result<const ClusterModel*> cluster_model() const override {
    if (gemm_.NumModels() == 0) {
      return Status::FailedPrecondition(
          "windowed monitor has no model before the first block");
    }
    return &gemm_.current().model();
  }
  void AuditInvariants(audit::AuditResult* audit) const override {
    gemm_.AuditInto(
        audit, [](BlockId /*start*/, const std::vector<BlockId>& /*expected*/,
                  const ClusterMaintainer& maintainer,
                  audit::AuditResult* out) {
          maintainer.birch().tree().AuditInto(out);
        });
  }
  [[nodiscard]] Status SaveState(persistence::Writer& w) const override {
    gemm_.SaveState(w);
    return Status::OK();
  }
  [[nodiscard]] Status LoadState(persistence::Reader& r) override {
    const persistence::BlockSource* source = r.block_source();
    if (source == nullptr || !source->points) {
      return Status::FailedPrecondition(
          "no point block source bound to the reader");
    }
    return gemm_.LoadState(r, source->points);
  }

  const GemmT& gemm() const { return gemm_; }

 private:
  // Declared before gemm_: the factory lambda reads this member.
  telemetry::TelemetryRegistry* telemetry_registry_ = nullptr;
  GemmT gemm_;
  size_t prev_count_ = 0;
  double prev_mean_radius_ = 0.0;
  EvolutionStats evolution_;
};

/// Incremental decision-tree classifier (the BOAT stand-in, [GGRL99b]).
class DTreeAdapter : public ModelMaintainer {
 public:
  DTreeAdapter(const LabeledSchema& schema, const DTreeOptions& options)
      : maintainer_(schema, options) {}

  std::string_view type_name() const override { return "dtree"; }
  AnyBlock::Payload payload() const override {
    return AnyBlock::Payload::kLabeled;
  }
  void AddResponse(const AnyBlock& block) override {
    maintainer_.AddBlock(block.labeled());
    std::vector<std::string> splits;
    std::string path;
    CollectSplitSignatures(maintainer_.model().root(), &path, &splits);
    tracker_.Observe(std::move(splits), &evolution_);
    evolution_.aux = static_cast<double>(maintainer_.model().NumLeaves());
    evolution_.aux_name = "leaves";
  }
  EvolutionStats DescribeEvolution() const override { return evolution_; }
  [[nodiscard]] Result<const DecisionTree*> dtree_model() const override {
    return &maintainer_.model();
  }
  [[nodiscard]] Status SaveState(persistence::Writer& w) const override {
    maintainer_.SaveState(w);
    return Status::OK();
  }
  [[nodiscard]] Status LoadState(persistence::Reader& r) override {
    return maintainer_.LoadState(r);
  }

  const DTreeMaintainer& dtree() const { return maintainer_; }

 private:
  DTreeMaintainer maintainer_;
  SetEvolutionTracker<std::string> tracker_;
  EvolutionStats evolution_;
};

/// Compact-sequence pattern detection (§4), optionally windowed
/// (footnote 9).
class PatternAdapter : public ModelMaintainer {
 public:
  explicit PatternAdapter(const CompactSequenceMiner::Options& options)
      : miner_(options) {}

  std::string_view type_name() const override { return "patterns"; }
  AnyBlock::Payload payload() const override {
    return AnyBlock::Payload::kTransactions;
  }
  void BindTelemetry(telemetry::TelemetryRegistry* registry) override {
    miner_.set_telemetry(registry);
  }
  void AddResponse(const AnyBlock& block) override {
    miner_.AddBlock(block.transactions());
    tracker_.Observe(miner_.sequences(), &evolution_);
  }
  EvolutionStats DescribeEvolution() const override { return evolution_; }
  [[nodiscard]] Result<const CompactSequenceMiner*> pattern_miner() const override {
    return &miner_;
  }
  [[nodiscard]] Status SaveState(persistence::Writer& w) const override {
    miner_.SaveState(w);
    return Status::OK();
  }
  [[nodiscard]] Status LoadState(persistence::Reader& r) override {
    return miner_.LoadState(r);
  }

 private:
  CompactSequenceMiner miner_;
  SetEvolutionTracker<std::vector<size_t>> tracker_;
  EvolutionStats evolution_;
};

}  // namespace demon

#endif  // DEMON_CORE_MAINTAINERS_H_
