#ifndef DEMON_CORE_MAINTAINERS_H_
#define DEMON_CORE_MAINTAINERS_H_

#include <memory>
#include <utility>

#include "clustering/birch.h"
#include "data/block.h"
#include "itemsets/borders.h"

namespace demon {

/// \brief Adapter turning BIRCH+ into a GEMM maintainer: the sub-cluster
/// set is incrementally maintainable under insertions (paper §3.1.2), and
/// GEMM supplies the most-recent-window semantics BIRCH cannot provide
/// itself (sub-clusters are not maintainable under deletions, §3.2.4).
class ClusterMaintainer {
 public:
  using BlockPtr = std::shared_ptr<const PointBlock>;

  ClusterMaintainer(size_t dim, const BirchOptions& options)
      : birch_(dim, options) {}

  void AddBlock(const BlockPtr& block) { birch_.AddBlock(*block); }

  const ClusterModel& model() const { return birch_.model(); }
  const BirchPlus& birch() const { return birch_; }

 private:
  BirchPlus birch_;
};

/// \brief Trivial maintainer counting records and item occurrences; used
/// by tests to check GEMM's block-routing logic independently of any
/// mining algorithm (GEMM is generic over the model class, §3.2).
class CountingMaintainer {
 public:
  using BlockPtr = std::shared_ptr<const TransactionBlock>;

  void AddBlock(const BlockPtr& block) {
    records_ += block->size();
    occurrences_ += block->TotalItemOccurrences();
    block_ids_.push_back(block->info().id);
  }

  uint64_t records() const { return records_; }
  uint64_t occurrences() const { return occurrences_; }
  const std::vector<BlockId>& block_ids() const { return block_ids_; }

 private:
  uint64_t records_ = 0;
  uint64_t occurrences_ = 0;
  std::vector<BlockId> block_ids_;
};

// BordersMaintainer already satisfies the GEMM maintainer concept
// (AddBlock(std::shared_ptr<const TransactionBlock>)); no adapter needed.

}  // namespace demon

#endif  // DEMON_CORE_MAINTAINERS_H_
