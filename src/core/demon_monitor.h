#ifndef DEMON_CORE_DEMON_MONITOR_H_
#define DEMON_CORE_DEMON_MONITOR_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/aum.h"
#include "core/bss.h"
#include "core/gemm.h"
#include "data/snapshot.h"
#include "itemsets/borders.h"
#include "patterns/compact_sequences.h"

namespace demon {

/// \brief The integration façade over the paper's problem space (its
/// Figure 11): one evolving transaction database feeding any number of
/// registered monitors —
///
///   * unrestricted-window itemset models under a window-independent BSS
///     (BORDERS maintainer, §3.1),
///   * most-recent-window itemset models under any BSS (GEMM, §3.2),
///   * compact-sequence pattern detection (§4), optionally windowed.
///
/// `AddBlock` appends the block to the snapshot and routes it to every
/// monitor; each monitor's model stays queryable between blocks. This is
/// the object a deployment embeds; the underlying algorithm classes stay
/// usable directly for finer control.
class DemonMonitor {
 public:
  /// Identifies a registered monitor.
  using MonitorId = size_t;

  explicit DemonMonitor(size_t num_items) : num_items_(num_items) {}

  /// Registers an unrestricted-window frequent-itemset monitor fed the
  /// blocks selected by a window-independent `bss`.
  Result<MonitorId> AddUnrestrictedItemsetMonitor(
      std::string name, double minsup, BlockSelectionSequence bss,
      CountingStrategy strategy = CountingStrategy::kEcut);

  /// Registers a most-recent-window frequent-itemset monitor of size
  /// `window` under any `bss` (GEMM-backed).
  Result<MonitorId> AddWindowedItemsetMonitor(
      std::string name, double minsup, size_t window,
      BlockSelectionSequence bss,
      CountingStrategy strategy = CountingStrategy::kEcut);

  /// Registers a compact-sequence pattern detector (window 0 =
  /// unrestricted).
  Result<MonitorId> AddPatternDetector(std::string name, double minsup,
                                       double alpha, size_t window = 0);

  /// Appends the next block and updates every monitor.
  void AddBlock(TransactionBlock block);

  /// The itemset model of a registered itemset monitor.
  Result<const ItemsetModel*> ItemsetModelOf(MonitorId id) const;

  /// The pattern detector of a registered detector id.
  Result<const CompactSequenceMiner*> PatternsOf(MonitorId id) const;

  /// Name of a monitor (as registered).
  Result<std::string> NameOf(MonitorId id) const;

  const TransactionSnapshot& snapshot() const { return snapshot_; }
  size_t num_items() const { return num_items_; }
  size_t NumMonitors() const { return monitors_.size(); }

 private:
  enum class Kind { kUnrestrictedItemsets, kWindowedItemsets, kPatterns };

  struct Monitor {
    Kind kind;
    std::string name;
    BlockSelectionSequence bss = BlockSelectionSequence::AllBlocks();
    // Exactly one of these is set, per kind.
    std::unique_ptr<BordersMaintainer> unrestricted;
    std::unique_ptr<Gemm<BordersMaintainer,
                         std::shared_ptr<const TransactionBlock>>> windowed;
    std::unique_ptr<CompactSequenceMiner> patterns;
  };

  Status CheckId(MonitorId id) const {
    if (id >= monitors_.size()) {
      return Status::NotFound("no monitor with id " + std::to_string(id));
    }
    return Status::OK();
  }

  size_t num_items_;
  TransactionSnapshot snapshot_;
  std::vector<Monitor> monitors_;
};

}  // namespace demon

#endif  // DEMON_CORE_DEMON_MONITOR_H_
