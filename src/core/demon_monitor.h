#ifndef DEMON_CORE_DEMON_MONITOR_H_
#define DEMON_CORE_DEMON_MONITOR_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/bss.h"
#include "core/engine.h"
#include "core/maintainers.h"
#include "data/snapshot.h"

namespace demon {

using LabeledSnapshot = Snapshot<LabeledBlock>;

/// \brief The integration façade over the paper's problem space (its
/// Figure 11): one evolving database feeding any number of registered
/// monitors —
///
///   * unrestricted-window itemset models under a window-independent BSS
///     (BORDERS maintainer, §3.1),
///   * most-recent-window itemset models under any BSS (GEMM, §3.2),
///   * unrestricted and most-recent-window cluster models (BIRCH+ and
///     GEMM over BIRCH+, §3.1.2 / §3.2.4),
///   * incremental decision-tree classifiers (the BOAT stand-in),
///   * compact-sequence pattern detection (§4), optionally windowed.
///
/// Registration builds a type-erased ModelMaintainer adapter and hands it
/// to the MaintenanceEngine, which updates all monitors concurrently per
/// block (EngineOptions.num_threads) and can defer GEMM's future-window
/// updates off the time-critical path (EngineOptions.defer_offline).
/// `AddBlock` / `AddPointBlock` / `AddLabeledBlock` append to the matching
/// snapshot and dispatch to every payload-compatible monitor; each
/// monitor's model stays queryable between blocks, and `StatsOf` exposes
/// the engine's per-monitor instrumentation. This is the object a
/// deployment embeds; the underlying algorithm classes stay usable
/// directly for finer control.
class DemonMonitor {
 public:
  /// Identifies a registered monitor.
  using MonitorId = MaintenanceEngine::MonitorId;

  explicit DemonMonitor(size_t num_items, const EngineOptions& engine = {})
      : num_items_(num_items), engine_(engine) {}

  /// Registers an unrestricted-window frequent-itemset monitor fed the
  /// blocks selected by a window-independent `bss`.
  [[nodiscard]] Result<MonitorId> AddUnrestrictedItemsetMonitor(
      std::string name, double minsup, BlockSelectionSequence bss,
      CountingStrategy strategy = CountingStrategy::kEcut);

  /// Registers a most-recent-window frequent-itemset monitor of size
  /// `window` under any `bss` (GEMM-backed).
  [[nodiscard]] Result<MonitorId> AddWindowedItemsetMonitor(
      std::string name, double minsup, size_t window,
      BlockSelectionSequence bss,
      CountingStrategy strategy = CountingStrategy::kEcut);

  /// Registers an unrestricted-window cluster monitor (BIRCH+) over
  /// `dim`-dimensional point blocks, fed the blocks selected by a
  /// window-independent `bss`.
  [[nodiscard]] Result<MonitorId> AddClusterMonitor(
      std::string name, size_t dim, const BirchOptions& birch,
      BlockSelectionSequence bss = BlockSelectionSequence::AllBlocks());

  /// Registers a most-recent-window cluster monitor of size `window`
  /// under any `bss` (GEMM over BIRCH+).
  [[nodiscard]] Result<MonitorId> AddWindowedClusterMonitor(std::string name, size_t dim,
                                              const BirchOptions& birch,
                                              size_t window,
                                              BlockSelectionSequence bss);

  /// Registers an incremental decision-tree classifier monitor over
  /// labeled blocks of `schema`, gated by a window-independent `bss`.
  [[nodiscard]] Result<MonitorId> AddClassifierMonitor(
      std::string name, const LabeledSchema& schema,
      const DTreeOptions& options,
      BlockSelectionSequence bss = BlockSelectionSequence::AllBlocks());

  /// Registers a compact-sequence pattern detector (window 0 =
  /// unrestricted).
  [[nodiscard]] Result<MonitorId> AddPatternDetector(std::string name, double minsup,
                                       double alpha, size_t window = 0);

  /// Appends the next transaction block and updates every
  /// transaction-consuming monitor.
  void AddBlock(TransactionBlock block);

  /// Appends the next point block and updates every cluster monitor.
  void AddPointBlock(PointBlock block);

  /// Appends the next labeled block and updates every classifier monitor.
  void AddLabeledBlock(LabeledBlock block);

  /// Drains any deferred (offline) GEMM updates queued by the engine.
  void Quiesce() const { engine_.Quiesce(); }

  /// The itemset model of a registered itemset monitor. For a windowed
  /// monitor before any block has arrived this is FailedPrecondition (no
  /// current model exists yet).
  [[nodiscard]] Result<const ItemsetModel*> ItemsetModelOf(MonitorId id) const;

  /// The cluster model of a registered cluster monitor.
  [[nodiscard]] Result<const ClusterModel*> ClusterModelOf(MonitorId id) const;

  /// The decision tree of a registered classifier monitor.
  [[nodiscard]] Result<const DecisionTree*> ClassifierOf(MonitorId id) const;

  /// The pattern detector of a registered detector id.
  [[nodiscard]] Result<const CompactSequenceMiner*> PatternsOf(MonitorId id) const;

  /// Per-monitor instrumentation: blocks routed/skipped, response vs
  /// offline wall time.
  [[nodiscard]] Result<MonitorStats> StatsOf(MonitorId id) const;

  /// Name of a monitor (as registered).
  [[nodiscard]] Result<std::string> NameOf(MonitorId id) const;

  /// The engine's telemetry registry (engine-owned unless injected via
  /// EngineOptions::telemetry).
  telemetry::TelemetryRegistry* telemetry() const { return engine_.telemetry(); }

  /// Quiesces the engine and serializes its telemetry registry — see
  /// MaintenanceEngine::ExportTelemetry.
  std::string ExportTelemetry(telemetry::TelemetryFormat format) const {
    return engine_.ExportTelemetry(format);
  }

  const TransactionSnapshot& snapshot() const { return snapshot_; }
  const PointSnapshot& point_snapshot() const { return points_; }
  const LabeledSnapshot& labeled_snapshot() const { return labeled_; }
  const MaintenanceEngine& engine() const { return engine_; }
  size_t num_items() const { return num_items_; }
  size_t NumMonitors() const { return engine_.NumMonitors(); }

 private:
  /// Monitors must be registered before the first block of any payload.
  [[nodiscard]] Status CheckNoBlocksYet() const;

  size_t num_items_;
  TransactionSnapshot snapshot_;
  PointSnapshot points_;
  LabeledSnapshot labeled_;
  MaintenanceEngine engine_;
};

}  // namespace demon

#endif  // DEMON_CORE_DEMON_MONITOR_H_
