#ifndef DEMON_CORE_DEMON_MONITOR_H_
#define DEMON_CORE_DEMON_MONITOR_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/bss.h"
#include "core/engine.h"
#include "core/maintainers.h"
#include "core/monitor_spec.h"
#include "data/snapshot.h"
#include "persistence/wal.h"

namespace demon {

using LabeledSnapshot = Snapshot<LabeledBlock>;

/// \brief The integration façade over the paper's problem space (its
/// Figure 11): one evolving database feeding any number of registered
/// monitors —
///
///   * unrestricted-window itemset models under a window-independent BSS
///     (BORDERS maintainer, §3.1),
///   * most-recent-window itemset models under any BSS (GEMM, §3.2),
///   * unrestricted and most-recent-window cluster models (BIRCH+ and
///     GEMM over BIRCH+, §3.1.2 / §3.2.4),
///   * incremental decision-tree classifiers (the BOAT stand-in),
///   * compact-sequence pattern detection (§4), optionally windowed.
///
/// Registration takes a MonitorSpec, builds the matching type-erased
/// ModelMaintainer adapter, and hands it to the MaintenanceEngine, which
/// updates all monitors concurrently per block (EngineOptions.num_threads)
/// and can defer GEMM's future-window updates off the time-critical path
/// (EngineOptions.defer_offline). `AddBlock` / `AddPointBlock` /
/// `AddLabeledBlock` append to the matching snapshot and dispatch to every
/// payload-compatible monitor; each monitor's model stays queryable
/// between blocks, and `StatsOf` exposes the engine's per-monitor
/// instrumentation. This is the object a deployment embeds; the underlying
/// algorithm classes stay usable directly for finer control.
///
/// Durability: `Checkpoint` atomically snapshots the whole monitored
/// database — blocks, registered specs, and every maintainer's state — to
/// one file, and `Restore` rebuilds an equivalent DemonMonitor from it.
/// An attached write-ahead log (`AttachWal`) records block arrivals as
/// they happen, so `ReplayWal` after a restore replays exactly the blocks
/// that arrived since the checkpoint and the models converge bit-identically
/// to an uninterrupted run.
class DemonMonitor {
 public:
  /// Identifies a registered monitor.
  using MonitorId = MaintenanceEngine::MonitorId;

  explicit DemonMonitor(size_t num_items, const EngineOptions& engine = {})
      : num_items_(num_items), engine_(engine) {}

  /// Registers a monitor described by `spec`. Validation depends on
  /// `spec.kind`: itemset kinds and patterns need `minsup` in (0, 1);
  /// windowed kinds need `window >= 1` and a window-relative BSS (if any)
  /// of exactly `window` bits; cluster kinds need `dim >= 1`; classifiers
  /// need a schema with at least one attribute and two classes; patterns
  /// need `alpha` in (0, 1). Window-relative sequences are rejected for
  /// every unrestricted kind (§2.3), and all monitors must be registered
  /// before the first block of any payload arrives.
  [[nodiscard]] Result<MonitorId> AddMonitor(MonitorSpec spec);

  /// The spec a monitor was registered with.
  [[nodiscard]] Result<const MonitorSpec*> SpecOf(MonitorId id) const;

  /// Appends the next transaction block and updates every
  /// transaction-consuming monitor.
  void AddBlock(TransactionBlock block);

  /// Appends the next point block and updates every cluster monitor.
  void AddPointBlock(PointBlock block);

  /// Appends the next labeled block and updates every classifier monitor.
  void AddLabeledBlock(LabeledBlock block);

  /// Drains any deferred (offline) GEMM updates queued by the engine.
  void Quiesce() const { engine_.Quiesce(); }

  // --- Durability ---------------------------------------------------------

  /// Quiesces, then writes one atomic checkpoint file: the block
  /// snapshots, every monitor's spec, and every maintainer's serialized
  /// state. The file appears under `path` only after a complete write
  /// (write-temp-then-rename), so a crash mid-checkpoint leaves any
  /// previous checkpoint intact.
  [[nodiscard]] Status Checkpoint(const std::string& path) const;

  /// Rebuilds a DemonMonitor from a checkpoint written by `Checkpoint`.
  /// Every monitor is re-registered from its stored spec and its
  /// maintainer state restored, so models, stats-relevant structures and
  /// pending GEMM work continue exactly where the checkpoint left off.
  /// Wrong-format files yield InvalidArgument; corruption yields DataLoss.
  [[nodiscard]] static Result<std::unique_ptr<DemonMonitor>> Restore(
      const std::string& path, const EngineOptions& engine = {});

  /// Attaches a write-ahead log at `path` (created when missing): every
  /// subsequent Add*Block is appended and flushed after it is assigned its
  /// id and before any monitor sees it. Append failures latch into
  /// `wal_status()` — arrival processing itself never blocks on the log.
  [[nodiscard]] Status AttachWal(const std::string& path);

  /// First WAL append failure, if any (OK while the log is healthy or
  /// detached). A deployment should surface this: blocks arriving after a
  /// failed append would be missing from crash recovery.
  const Status& wal_status() const { return wal_status_; }

  /// Replays the block arrivals logged at `path` through this monitor, in
  /// arrival order. Records already covered by the restored snapshots
  /// (id <= latest restored id) are skipped, so replaying a log that
  /// overlaps the checkpoint is safe; a gap between the snapshot and the
  /// log yields DataLoss. Replayed blocks are not re-appended to an
  /// attached WAL.
  [[nodiscard]] Status ReplayWal(const std::string& path);

  /// Truncates the attached WAL to empty — call right after a successful
  /// Checkpoint so the log only holds arrivals newer than the checkpoint.
  [[nodiscard]] Status ResetWal();

  // ------------------------------------------------------------------------

  /// The itemset model of a registered itemset monitor. For a windowed
  /// monitor before any block has arrived this is FailedPrecondition (no
  /// current model exists yet).
  [[nodiscard]] Result<const ItemsetModel*> ItemsetModelOf(MonitorId id) const;

  /// The cluster model of a registered cluster monitor.
  [[nodiscard]] Result<const ClusterModel*> ClusterModelOf(MonitorId id) const;

  /// The decision tree of a registered classifier monitor.
  [[nodiscard]] Result<const DecisionTree*> ClassifierOf(MonitorId id) const;

  /// The pattern detector of a registered detector id.
  [[nodiscard]] Result<const CompactSequenceMiner*> PatternsOf(MonitorId id) const;

  /// Per-monitor instrumentation: blocks routed/skipped, response vs
  /// offline wall time.
  [[nodiscard]] Result<MonitorStats> StatsOf(MonitorId id) const;

  /// Name of a monitor (as registered).
  [[nodiscard]] Result<std::string> NameOf(MonitorId id) const;

  /// The engine's telemetry registry (engine-owned unless injected via
  /// EngineOptions::telemetry).
  telemetry::TelemetryRegistry* telemetry() const { return engine_.telemetry(); }

  /// Quiesces the engine and serializes its telemetry registry — see
  /// MaintenanceEngine::ExportTelemetry.
  std::string ExportTelemetry(telemetry::TelemetryFormat format) const {
    return engine_.ExportTelemetry(format);
  }

  /// Quiesces and returns the engine's per-block timeline — one record
  /// per dispatched block with per-monitor response/offline times and
  /// evolution stats (see BlockTimelineRecord).
  std::vector<BlockTimelineRecord> TimelineRecords() {
    return engine_.TimelineRecords();
  }

  const TransactionSnapshot& snapshot() const { return snapshot_; }
  const PointSnapshot& point_snapshot() const { return points_; }
  const LabeledSnapshot& labeled_snapshot() const { return labeled_; }
  const MaintenanceEngine& engine() const { return engine_; }
  size_t num_items() const { return num_items_; }
  size_t NumMonitors() const { return engine_.NumMonitors(); }

 private:
  /// Monitors must be registered before the first block of any payload.
  [[nodiscard]] Status CheckNoBlocksYet() const;

  /// Validates `spec` and registers its maintainer. Restore passes
  /// `check_no_blocks = false`: it re-registers monitors after the block
  /// snapshots have been reloaded.
  [[nodiscard]] Result<MonitorId> RegisterSpec(MonitorSpec spec,
                                               bool check_no_blocks);

  /// Appends a restored/replayed arrival to the WAL unless replaying.
  template <typename BlockT>
  void LogArrival(const BlockT& block);

  size_t num_items_;
  TransactionSnapshot snapshot_;
  PointSnapshot points_;
  LabeledSnapshot labeled_;
  MaintenanceEngine engine_;
  /// Parallel to the engine's monitor ids: the spec each was built from
  /// (what Checkpoint stores so Restore can rebuild the maintainer).
  std::vector<MonitorSpec> specs_;
  std::unique_ptr<persistence::WriteAheadLog> wal_;
  Status wal_status_;
  /// True while ReplayWal feeds blocks back in, so they are not re-logged.
  bool replaying_ = false;
};

}  // namespace demon

#endif  // DEMON_CORE_DEMON_MONITOR_H_
