#ifndef DEMON_CORE_AUM_H_
#define DEMON_CORE_AUM_H_

#include <algorithm>
#include <deque>
#include <memory>
#include <vector>

#include "common/telemetry.h"
#include "core/bss.h"
#include "data/block.h"
#include "itemsets/borders.h"

namespace demon {

/// \brief AuM (paper §3.2.4): the direct alternative to GEMM for the
/// most-recent-window option — a single frequent-itemset model updated by
/// *adding* the blocks that enter the selected set and *deleting* the ones
/// that leave it whenever the window slides.
///
/// For BSS = <11...1> this deletes exactly one block and adds one per
/// slide (roughly twice A_M's work, which is the trade-off the paper
/// analyzes). For an arbitrary window-relative BSS the selected set can
/// change drastically — with <1010...10> it is *disjoint* from one window
/// to the next, degenerating to reconstruction from scratch. The
/// `gemm_response` benchmark demonstrates both regimes.
class AuMItemsetMaintainer {
 public:
  using BlockPtr = std::shared_ptr<const TransactionBlock>;

  /// Per-slide work statistics.
  struct SlideStats {
    size_t blocks_added = 0;
    size_t blocks_removed = 0;
    double seconds = 0.0;
  };

  AuMItemsetMaintainer(const BordersOptions& options,
                       BlockSelectionSequence bss, size_t window_size)
      : maintainer_(options), bss_(std::move(bss)), window_size_(window_size) {
    DEMON_CHECK(window_size_ >= 1);
    if (bss_.is_window_relative()) {
      DEMON_CHECK(bss_.window_bits().size() == window_size_);
    }
  }

  /// Feeds the next block; the window slides and the model is updated to
  /// cover exactly the blocks the BSS selects from the new window.
  void AddBlock(BlockPtr block) {
    ++t_;
    window_.push_back(std::move(block));
    if (window_.size() > window_size_) window_.pop_front();

    last_stats_ = SlideStats{};
    DEMON_TRACE_SPAN(span, telemetry_, "aum-slide", "aum");
    telemetry::ScopedTimer timer(slide_hist_);

    // Desired selected set over the new window.
    std::vector<BlockPtr> desired;
    const size_t w = window_.size();
    for (size_t position = 1; position <= w; ++position) {
      const BlockPtr& candidate = window_[position - 1];
      bool selected = false;
      if (bss_.is_window_relative()) {
        // Position within the window counts from its oldest block; while
        // the window is still filling (t < w) this matches GEMM's view of
        // the growing window D[1, t].
        selected = bss_.window_bits()[position - 1];
      } else {
        selected = bss_.SelectsBlock(candidate->info().id);
      }
      if (selected) desired.push_back(candidate);
    }

    // Delete blocks that left the selected set (scan current ids against
    // the desired ones); then add the new entrants in id order.
    std::vector<BlockId> desired_ids;
    desired_ids.reserve(desired.size());
    for (const auto& b : desired) desired_ids.push_back(b->info().id);

    for (size_t i = maintainer_.NumBlocks(); i-- > 0;) {
      const BlockId id = maintainer_.BlockIds()[i];
      if (std::find(desired_ids.begin(), desired_ids.end(), id) ==
          desired_ids.end()) {
        maintainer_.RemoveBlockAt(i);
        ++last_stats_.blocks_removed;
      }
    }
    const std::vector<BlockId> present = maintainer_.BlockIds();
    for (const auto& candidate : desired) {
      if (std::find(present.begin(), present.end(), candidate->info().id) ==
          present.end()) {
        maintainer_.AddBlock(candidate);
        ++last_stats_.blocks_added;
      }
    }
    last_stats_.seconds = timer.Stop();
  }

  const ItemsetModel& model() const { return maintainer_.model(); }
  const SlideStats& last_stats() const { return last_stats_; }

  /// Shares `pool` with the underlying BORDERS counting kernel (null =
  /// sequential); both the per-slide deletions and additions then count in
  /// parallel with bit-identical results.
  void set_counting_pool(ThreadPool* pool) {
    maintainer_.set_counting_pool(pool);
  }

  /// Binds `registry` for the per-slide span, the `aum/slide_seconds`
  /// histogram, and the underlying BORDERS/counting instrumentation.
  /// SlideStats stays available in every build.
  void set_telemetry(telemetry::TelemetryRegistry* registry) {
    maintainer_.set_telemetry(registry);
    if constexpr (telemetry::kEnabled) {
      telemetry_ = registry;
      slide_hist_ = registry == nullptr
                        ? nullptr
                        : registry->histogram("aum/slide_seconds");
    }
  }

 private:
  BordersMaintainer maintainer_;
  BlockSelectionSequence bss_;
  size_t window_size_;
  std::deque<BlockPtr> window_;
  size_t t_ = 0;
  SlideStats last_stats_;
  /// Null in DEMON_TELEMETRY=OFF builds (see set_telemetry).
  telemetry::TelemetryRegistry* telemetry_ = nullptr;
  telemetry::Histogram* slide_hist_ = nullptr;
};

}  // namespace demon

#endif  // DEMON_CORE_AUM_H_
