#include "core/demon_monitor.h"

#include "persistence/block_codec.h"
#include "persistence/file_header.h"
#include "persistence/serializer.h"

namespace demon {
namespace {

/// Version of the checkpoint container payload (see FormatId::kCheckpoint).
/// v2 appends the TID-list budget fields to each MonitorSpec; v1 files
/// restore with unbounded budgets.
constexpr uint32_t kCheckpointVersion = 2;

}  // namespace

Status DemonMonitor::CheckNoBlocksYet() const {
  if (!snapshot_.empty() || !points_.empty() || !labeled_.empty()) {
    return Status::FailedPrecondition(
        "monitors must be registered before the first block");
  }
  return Status::OK();
}

Result<DemonMonitor::MonitorId> DemonMonitor::AddMonitor(MonitorSpec spec) {
  return RegisterSpec(std::move(spec), /*check_no_blocks=*/true);
}

Result<const MonitorSpec*> DemonMonitor::SpecOf(MonitorId id) const {
  if (id >= specs_.size()) {
    return Status::NotFound("no monitor with id " + std::to_string(id));
  }
  return &specs_[id];
}

Result<DemonMonitor::MonitorId> DemonMonitor::RegisterSpec(
    MonitorSpec spec, bool check_no_blocks) {
  const bool windowed = spec.kind == MonitorKind::kWindowedItemsets ||
                        spec.kind == MonitorKind::kWindowedClusters;
  if (spec.bss.is_window_relative()) {
    if (!windowed) {
      return Status::InvalidArgument(
          "window-relative BSS requires a most-recent-window monitor (§2.3)");
    }
    if (spec.bss.window_bits().size() != spec.window) {
      return Status::InvalidArgument(
          "window-relative BSS must have exactly `window` bits");
    }
  }
  if (windowed && spec.window == 0) {
    return Status::InvalidArgument("window must be >= 1");
  }
  switch (spec.kind) {
    case MonitorKind::kUnrestrictedItemsets:
    case MonitorKind::kWindowedItemsets:
      if (spec.minsup <= 0.0 || spec.minsup >= 1.0) {
        return Status::InvalidArgument("minsup must be in (0, 1)");
      }
      break;
    case MonitorKind::kUnrestrictedClusters:
    case MonitorKind::kWindowedClusters:
      if (spec.dim == 0) {
        return Status::InvalidArgument("dim must be >= 1");
      }
      break;
    case MonitorKind::kClassifier:
      if (spec.schema.num_attributes() == 0 || spec.schema.num_classes < 2) {
        return Status::InvalidArgument(
            "classifier schema needs >= 1 attribute and >= 2 classes");
      }
      break;
    case MonitorKind::kPatterns:
      if (spec.minsup <= 0.0 || spec.minsup >= 1.0 || spec.alpha <= 0.0 ||
          spec.alpha >= 1.0) {
        return Status::InvalidArgument("minsup and alpha must be in (0, 1)");
      }
      break;
  }
  if (check_no_blocks) DEMON_RETURN_NOT_OK(CheckNoBlocksYet());

  std::unique_ptr<ModelMaintainer> maintainer;
  // GEMM-backed kinds apply the BSS internally (projection / right-shift,
  // §3.2) and pattern detectors consume every block, so only the
  // unrestricted kinds hand the engine a BSS gate.
  bool gated = false;
  switch (spec.kind) {
    case MonitorKind::kUnrestrictedItemsets: {
      BordersOptions options;
      options.minsup = spec.minsup;
      options.num_items = num_items_;
      options.strategy = spec.strategy;
      options.tidlist_budget_bytes = spec.tidlist_budget_bytes;
      options.tidlist_spill_dir = spec.tidlist_spill_dir;
      maintainer = std::make_unique<BordersAdapter>(options);
      gated = true;
      break;
    }
    case MonitorKind::kWindowedItemsets: {
      BordersOptions options;
      options.minsup = spec.minsup;
      options.num_items = num_items_;
      options.strategy = spec.strategy;
      options.tidlist_budget_bytes = spec.tidlist_budget_bytes;
      options.tidlist_spill_dir = spec.tidlist_spill_dir;
      maintainer = std::make_unique<GemmItemsetAdapter>(spec.bss, spec.window,
                                                        options);
      break;
    }
    case MonitorKind::kUnrestrictedClusters:
      maintainer = std::make_unique<ClusterAdapter>(spec.dim, spec.birch);
      gated = true;
      break;
    case MonitorKind::kWindowedClusters:
      maintainer = std::make_unique<GemmClusterAdapter>(
          spec.bss, spec.window, spec.dim, spec.birch);
      break;
    case MonitorKind::kClassifier:
      maintainer = std::make_unique<DTreeAdapter>(spec.schema, spec.dtree);
      gated = true;
      break;
    case MonitorKind::kPatterns: {
      CompactSequenceMiner::Options options;
      options.focus.minsup = spec.minsup;
      options.focus.num_items = num_items_;
      options.alpha = spec.alpha;
      options.window_size = spec.window;
      maintainer = std::make_unique<PatternAdapter>(options);
      break;
    }
  }
  const MonitorId id = engine_.Register(
      spec.name, std::move(maintainer),
      gated ? std::optional<BlockSelectionSequence>(spec.bss) : std::nullopt);
  specs_.push_back(std::move(spec));
  return id;
}

template <typename BlockT>
void DemonMonitor::LogArrival(const BlockT& block) {
  if (wal_ == nullptr || replaying_ || !wal_status_.ok()) return;
  const Status appended = wal_->Append(block);
  if (!appended.ok()) wal_status_ = appended;
}

void DemonMonitor::AddBlock(TransactionBlock block) {
  const BlockId id = snapshot_.Append(std::move(block));
  LogArrival(*snapshot_.block(id));
  engine_.Dispatch(AnyBlock(snapshot_.block(id)));
}

void DemonMonitor::AddPointBlock(PointBlock block) {
  const BlockId id = points_.Append(std::move(block));
  LogArrival(*points_.block(id));
  engine_.Dispatch(AnyBlock(points_.block(id)));
}

void DemonMonitor::AddLabeledBlock(LabeledBlock block) {
  const BlockId id = labeled_.Append(std::move(block));
  LogArrival(*labeled_.block(id));
  engine_.Dispatch(AnyBlock(labeled_.block(id)));
}

Status DemonMonitor::Checkpoint(const std::string& path) const {
  // Quiesce so deferred GEMM offline work has landed; the per-maintainer
  // MaintainerOf below quiesces again, which is then a no-op.
  engine_.Quiesce();
  persistence::Writer w;
  w.WriteU64(num_items_);
  persistence::WriteSnapshot(w, snapshot_);
  persistence::WriteSnapshot(w, points_);
  persistence::WriteSnapshot(w, labeled_);
  w.WriteU64(specs_.size());
  for (MonitorId id = 0; id < specs_.size(); ++id) {
    SaveMonitorSpec(w, specs_[id]);
    DEMON_ASSIGN_OR_RETURN(const ModelMaintainer* maintainer,
                           engine_.MaintainerOf(id));
    // Frame each maintainer's state so a corrupt section cannot bleed into
    // its neighbor on load.
    persistence::Writer state;
    DEMON_RETURN_NOT_OK(maintainer->SaveState(state));
    w.WriteString(state.buffer());
  }
  return persistence::WritePayloadFile(path, persistence::FormatId::kCheckpoint,
                                       kCheckpointVersion, w);
}

Result<std::unique_ptr<DemonMonitor>> DemonMonitor::Restore(
    const std::string& path, const EngineOptions& engine) {
  uint32_t checkpoint_version = kCheckpointVersion;
  DEMON_ASSIGN_OR_RETURN(
      const std::string payload,
      persistence::ReadPayloadFile(path, persistence::FormatId::kCheckpoint,
                                   kCheckpointVersion, &checkpoint_version));
  persistence::Reader r(payload);
  const uint64_t num_items = r.ReadU64();
  if (!r.ok()) return r.status();

  auto monitor = std::make_unique<DemonMonitor>(
      static_cast<size_t>(num_items), engine);
  persistence::ReadSnapshotInto(r, &monitor->snapshot_);
  persistence::ReadSnapshotInto(r, &monitor->points_);
  persistence::ReadSnapshotInto(r, &monitor->labeled_);
  if (!r.ok()) return r.status();

  // Maintainer state references blocks by id; resolve them against the
  // just-restored snapshots so block data is shared, not duplicated.
  persistence::BlockSource source;
  source.transactions =
      [&m = *monitor](BlockId id)
      -> Result<std::shared_ptr<const TransactionBlock>> {
    if (id < 1 || id > m.snapshot_.latest_id()) {
      return Status::DataLoss("checkpoint references unknown transaction block " +
                              std::to_string(id));
    }
    return m.snapshot_.block(id);
  };
  source.points = [&m = *monitor](
                      BlockId id) -> Result<std::shared_ptr<const PointBlock>> {
    if (id < 1 || id > m.points_.latest_id()) {
      return Status::DataLoss("checkpoint references unknown point block " +
                              std::to_string(id));
    }
    return m.points_.block(id);
  };
  source.labeled =
      [&m = *monitor](BlockId id)
      -> Result<std::shared_ptr<const LabeledBlock>> {
    if (id < 1 || id > m.labeled_.latest_id()) {
      return Status::DataLoss("checkpoint references unknown labeled block " +
                              std::to_string(id));
    }
    return m.labeled_.block(id);
  };
  r.set_block_source(&source);

  const size_t num_monitors = r.ReadLength(1);
  if (!r.ok()) return r.status();
  for (size_t i = 0; i < num_monitors; ++i) {
    DEMON_ASSIGN_OR_RETURN(MonitorSpec spec,
                           LoadMonitorSpec(r, checkpoint_version));
    DEMON_ASSIGN_OR_RETURN(
        const MonitorId id,
        monitor->RegisterSpec(std::move(spec), /*check_no_blocks=*/false));
    const size_t state_bytes = r.ReadLength(1);
    if (!r.ok()) return r.status();
    persistence::Reader state = r.Sub(state_bytes);
    DEMON_ASSIGN_OR_RETURN(ModelMaintainer * maintainer,
                           monitor->engine_.MutableMaintainerOf(id));
    DEMON_RETURN_NOT_OK(maintainer->LoadState(state));
    if (!state.AtEnd()) {
      return Status::DataLoss("monitor " + std::to_string(id) +
                              " left trailing bytes in its state section");
    }
  }
  if (!r.ok()) return r.status();
  if (!r.AtEnd()) {
    return Status::DataLoss("trailing bytes after the checkpoint payload");
  }
  return monitor;
}

Status DemonMonitor::AttachWal(const std::string& path) {
  DEMON_ASSIGN_OR_RETURN(wal_, persistence::WriteAheadLog::Open(path));
  wal_status_ = Status::OK();
  return Status::OK();
}

Status DemonMonitor::ResetWal() {
  if (wal_ == nullptr) {
    return Status::FailedPrecondition("no write-ahead log attached");
  }
  DEMON_RETURN_NOT_OK(wal_->Reset());
  wal_status_ = Status::OK();
  return Status::OK();
}

Status DemonMonitor::ReplayWal(const std::string& path) {
  replaying_ = true;
  persistence::WriteAheadLog::Replayer replayer;
  // Records up to the restored snapshot's latest id were captured by the
  // checkpoint; later ids must continue the sequence without a gap.
  const auto feed = [this](auto& snapshot, auto block,
                           const char* payload) -> Status {
    const BlockId id = block->info().id;
    const BlockId next = snapshot.latest_id() + 1;
    if (id < next) return Status::OK();
    if (id > next) {
      return Status::DataLoss(
          std::string("WAL jumps to ") + payload + " block " +
          std::to_string(id) + " but the next expected id is " +
          std::to_string(next));
    }
    snapshot.Append(std::move(block));
    engine_.Dispatch(AnyBlock(snapshot.block(id)));
    return Status::OK();
  };
  replayer.transactions =
      [&](std::shared_ptr<const TransactionBlock> block) {
        return feed(snapshot_, std::move(block), "transaction");
      };
  replayer.points = [&](std::shared_ptr<const PointBlock> block) {
    return feed(points_, std::move(block), "point");
  };
  replayer.labeled = [&](std::shared_ptr<const LabeledBlock> block) {
    return feed(labeled_, std::move(block), "labeled");
  };
  const Status replayed = persistence::WriteAheadLog::Replay(path, replayer);
  replaying_ = false;
  return replayed;
}

Result<const ItemsetModel*> DemonMonitor::ItemsetModelOf(MonitorId id) const {
  DEMON_ASSIGN_OR_RETURN(const ModelMaintainer* m, engine_.MaintainerOf(id));
  return m->itemset_model();
}

Result<const ClusterModel*> DemonMonitor::ClusterModelOf(MonitorId id) const {
  DEMON_ASSIGN_OR_RETURN(const ModelMaintainer* m, engine_.MaintainerOf(id));
  return m->cluster_model();
}

Result<const DecisionTree*> DemonMonitor::ClassifierOf(MonitorId id) const {
  DEMON_ASSIGN_OR_RETURN(const ModelMaintainer* m, engine_.MaintainerOf(id));
  return m->dtree_model();
}

Result<const CompactSequenceMiner*> DemonMonitor::PatternsOf(
    MonitorId id) const {
  DEMON_ASSIGN_OR_RETURN(const ModelMaintainer* m, engine_.MaintainerOf(id));
  return m->pattern_miner();
}

Result<MonitorStats> DemonMonitor::StatsOf(MonitorId id) const {
  return engine_.StatsOf(id);
}

Result<std::string> DemonMonitor::NameOf(MonitorId id) const {
  return engine_.NameOf(id);
}

}  // namespace demon
