#include "core/demon_monitor.h"

namespace demon {

Status DemonMonitor::CheckNoBlocksYet() const {
  if (!snapshot_.empty() || !points_.empty() || !labeled_.empty()) {
    return Status::FailedPrecondition(
        "monitors must be registered before the first block");
  }
  return Status::OK();
}

Result<DemonMonitor::MonitorId> DemonMonitor::AddUnrestrictedItemsetMonitor(
    std::string name, double minsup, BlockSelectionSequence bss,
    CountingStrategy strategy) {
  if (minsup <= 0.0 || minsup >= 1.0) {
    return Status::InvalidArgument("minsup must be in (0, 1)");
  }
  if (bss.is_window_relative()) {
    return Status::InvalidArgument(
        "window-relative BSS requires a most-recent-window monitor (§2.3)");
  }
  DEMON_RETURN_NOT_OK(CheckNoBlocksYet());
  BordersOptions options;
  options.minsup = minsup;
  options.num_items = num_items_;
  options.strategy = strategy;
  return engine_.Register(std::move(name),
                          std::make_unique<BordersAdapter>(options),
                          std::move(bss));
}

Result<DemonMonitor::MonitorId> DemonMonitor::AddWindowedItemsetMonitor(
    std::string name, double minsup, size_t window,
    BlockSelectionSequence bss, CountingStrategy strategy) {
  if (minsup <= 0.0 || minsup >= 1.0) {
    return Status::InvalidArgument("minsup must be in (0, 1)");
  }
  if (window == 0) {
    return Status::InvalidArgument("window must be >= 1");
  }
  if (bss.is_window_relative() && bss.window_bits().size() != window) {
    return Status::InvalidArgument(
        "window-relative BSS must have exactly `window` bits");
  }
  DEMON_RETURN_NOT_OK(CheckNoBlocksYet());
  BordersOptions options;
  options.minsup = minsup;
  options.num_items = num_items_;
  options.strategy = strategy;
  // GEMM applies the BSS internally (projection / right-shift, §3.2), so
  // the engine routes every transaction block through unfiltered.
  return engine_.Register(
      std::move(name),
      std::make_unique<GemmItemsetAdapter>(std::move(bss), window, options));
}

Result<DemonMonitor::MonitorId> DemonMonitor::AddClusterMonitor(
    std::string name, size_t dim, const BirchOptions& birch,
    BlockSelectionSequence bss) {
  if (dim == 0) {
    return Status::InvalidArgument("dim must be >= 1");
  }
  if (bss.is_window_relative()) {
    return Status::InvalidArgument(
        "window-relative BSS requires a most-recent-window monitor (§2.3)");
  }
  DEMON_RETURN_NOT_OK(CheckNoBlocksYet());
  return engine_.Register(std::move(name),
                          std::make_unique<ClusterAdapter>(dim, birch),
                          std::move(bss));
}

Result<DemonMonitor::MonitorId> DemonMonitor::AddWindowedClusterMonitor(
    std::string name, size_t dim, const BirchOptions& birch, size_t window,
    BlockSelectionSequence bss) {
  if (dim == 0) {
    return Status::InvalidArgument("dim must be >= 1");
  }
  if (window == 0) {
    return Status::InvalidArgument("window must be >= 1");
  }
  if (bss.is_window_relative() && bss.window_bits().size() != window) {
    return Status::InvalidArgument(
        "window-relative BSS must have exactly `window` bits");
  }
  DEMON_RETURN_NOT_OK(CheckNoBlocksYet());
  return engine_.Register(std::move(name),
                          std::make_unique<GemmClusterAdapter>(
                              std::move(bss), window, dim, birch));
}

Result<DemonMonitor::MonitorId> DemonMonitor::AddClassifierMonitor(
    std::string name, const LabeledSchema& schema, const DTreeOptions& options,
    BlockSelectionSequence bss) {
  if (schema.num_attributes() == 0 || schema.num_classes < 2) {
    return Status::InvalidArgument(
        "classifier schema needs >= 1 attribute and >= 2 classes");
  }
  if (bss.is_window_relative()) {
    return Status::InvalidArgument(
        "window-relative BSS requires a most-recent-window monitor (§2.3)");
  }
  DEMON_RETURN_NOT_OK(CheckNoBlocksYet());
  return engine_.Register(std::move(name),
                          std::make_unique<DTreeAdapter>(schema, options),
                          std::move(bss));
}

Result<DemonMonitor::MonitorId> DemonMonitor::AddPatternDetector(
    std::string name, double minsup, double alpha, size_t window) {
  if (minsup <= 0.0 || minsup >= 1.0 || alpha <= 0.0 || alpha >= 1.0) {
    return Status::InvalidArgument("minsup and alpha must be in (0, 1)");
  }
  DEMON_RETURN_NOT_OK(CheckNoBlocksYet());
  CompactSequenceMiner::Options options;
  options.focus.minsup = minsup;
  options.focus.num_items = num_items_;
  options.alpha = alpha;
  options.window_size = window;
  return engine_.Register(std::move(name),
                          std::make_unique<PatternAdapter>(options));
}

void DemonMonitor::AddBlock(TransactionBlock block) {
  const BlockId id = snapshot_.Append(std::move(block));
  engine_.Dispatch(AnyBlock(snapshot_.block(id)));
}

void DemonMonitor::AddPointBlock(PointBlock block) {
  const BlockId id = points_.Append(std::move(block));
  engine_.Dispatch(AnyBlock(points_.block(id)));
}

void DemonMonitor::AddLabeledBlock(LabeledBlock block) {
  const BlockId id = labeled_.Append(std::move(block));
  engine_.Dispatch(AnyBlock(labeled_.block(id)));
}

Result<const ItemsetModel*> DemonMonitor::ItemsetModelOf(MonitorId id) const {
  DEMON_ASSIGN_OR_RETURN(const ModelMaintainer* m, engine_.MaintainerOf(id));
  return m->itemset_model();
}

Result<const ClusterModel*> DemonMonitor::ClusterModelOf(MonitorId id) const {
  DEMON_ASSIGN_OR_RETURN(const ModelMaintainer* m, engine_.MaintainerOf(id));
  return m->cluster_model();
}

Result<const DecisionTree*> DemonMonitor::ClassifierOf(MonitorId id) const {
  DEMON_ASSIGN_OR_RETURN(const ModelMaintainer* m, engine_.MaintainerOf(id));
  return m->dtree_model();
}

Result<const CompactSequenceMiner*> DemonMonitor::PatternsOf(
    MonitorId id) const {
  DEMON_ASSIGN_OR_RETURN(const ModelMaintainer* m, engine_.MaintainerOf(id));
  return m->pattern_miner();
}

Result<MonitorStats> DemonMonitor::StatsOf(MonitorId id) const {
  return engine_.StatsOf(id);
}

Result<std::string> DemonMonitor::NameOf(MonitorId id) const {
  return engine_.NameOf(id);
}

}  // namespace demon
