#include "core/demon_monitor.h"

namespace demon {

Result<DemonMonitor::MonitorId> DemonMonitor::AddUnrestrictedItemsetMonitor(
    std::string name, double minsup, BlockSelectionSequence bss,
    CountingStrategy strategy) {
  if (minsup <= 0.0 || minsup >= 1.0) {
    return Status::InvalidArgument("minsup must be in (0, 1)");
  }
  if (bss.is_window_relative()) {
    return Status::InvalidArgument(
        "window-relative BSS requires a most-recent-window monitor (§2.3)");
  }
  if (!snapshot_.empty()) {
    return Status::FailedPrecondition(
        "monitors must be registered before the first block");
  }
  BordersOptions options;
  options.minsup = minsup;
  options.num_items = num_items_;
  options.strategy = strategy;
  Monitor monitor;
  monitor.kind = Kind::kUnrestrictedItemsets;
  monitor.name = std::move(name);
  monitor.bss = std::move(bss);
  monitor.unrestricted = std::make_unique<BordersMaintainer>(options);
  monitors_.push_back(std::move(monitor));
  return monitors_.size() - 1;
}

Result<DemonMonitor::MonitorId> DemonMonitor::AddWindowedItemsetMonitor(
    std::string name, double minsup, size_t window,
    BlockSelectionSequence bss, CountingStrategy strategy) {
  if (minsup <= 0.0 || minsup >= 1.0) {
    return Status::InvalidArgument("minsup must be in (0, 1)");
  }
  if (window == 0) {
    return Status::InvalidArgument("window must be >= 1");
  }
  if (bss.is_window_relative() && bss.window_bits().size() != window) {
    return Status::InvalidArgument(
        "window-relative BSS must have exactly `window` bits");
  }
  if (!snapshot_.empty()) {
    return Status::FailedPrecondition(
        "monitors must be registered before the first block");
  }
  BordersOptions options;
  options.minsup = minsup;
  options.num_items = num_items_;
  options.strategy = strategy;
  Monitor monitor;
  monitor.kind = Kind::kWindowedItemsets;
  monitor.name = std::move(name);
  monitor.windowed = std::make_unique<
      Gemm<BordersMaintainer, std::shared_ptr<const TransactionBlock>>>(
      std::move(bss), window,
      [options] { return BordersMaintainer(options); });
  monitors_.push_back(std::move(monitor));
  return monitors_.size() - 1;
}

Result<DemonMonitor::MonitorId> DemonMonitor::AddPatternDetector(
    std::string name, double minsup, double alpha, size_t window) {
  if (minsup <= 0.0 || minsup >= 1.0 || alpha <= 0.0 || alpha >= 1.0) {
    return Status::InvalidArgument("minsup and alpha must be in (0, 1)");
  }
  if (!snapshot_.empty()) {
    return Status::FailedPrecondition(
        "monitors must be registered before the first block");
  }
  CompactSequenceMiner::Options options;
  options.focus.minsup = minsup;
  options.focus.num_items = num_items_;
  options.alpha = alpha;
  options.window_size = window;
  Monitor monitor;
  monitor.kind = Kind::kPatterns;
  monitor.name = std::move(name);
  monitor.patterns = std::make_unique<CompactSequenceMiner>(options);
  monitors_.push_back(std::move(monitor));
  return monitors_.size() - 1;
}

void DemonMonitor::AddBlock(TransactionBlock block) {
  const BlockId id = snapshot_.Append(std::move(block));
  const auto& stored = snapshot_.block(id);
  for (Monitor& monitor : monitors_) {
    switch (monitor.kind) {
      case Kind::kUnrestrictedItemsets:
        // The BSS gates which blocks reach the model (§3.1: if b_t = 0
        // the model simply carries over).
        if (monitor.bss.SelectsBlock(id)) {
          monitor.unrestricted->AddBlock(stored);
        }
        break;
      case Kind::kWindowedItemsets:
        monitor.windowed->AddBlock(stored);
        break;
      case Kind::kPatterns:
        monitor.patterns->AddBlock(stored);
        break;
    }
  }
}

Result<const ItemsetModel*> DemonMonitor::ItemsetModelOf(
    MonitorId id) const {
  DEMON_RETURN_NOT_OK(CheckId(id));
  const Monitor& monitor = monitors_[id];
  switch (monitor.kind) {
    case Kind::kUnrestrictedItemsets:
      return &monitor.unrestricted->model();
    case Kind::kWindowedItemsets:
      return &monitor.windowed->current().model();
    case Kind::kPatterns:
      return Status::InvalidArgument("monitor is a pattern detector");
  }
  return Status::Internal("unreachable");
}

Result<const CompactSequenceMiner*> DemonMonitor::PatternsOf(
    MonitorId id) const {
  DEMON_RETURN_NOT_OK(CheckId(id));
  if (monitors_[id].kind != Kind::kPatterns) {
    return Status::InvalidArgument("monitor is not a pattern detector");
  }
  return monitors_[id].patterns.get();
}

Result<std::string> DemonMonitor::NameOf(MonitorId id) const {
  DEMON_RETURN_NOT_OK(CheckId(id));
  return monitors_[id].name;
}

}  // namespace demon
