#ifndef DEMON_CORE_BSS_H_
#define DEMON_CORE_BSS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/types.h"
#include "persistence/serializer.h"

namespace demon {

/// \brief A block selection sequence (paper Definition 2.1): which blocks
/// of the evolving database participate in the mined model.
///
/// Two kinds exist, mirroring the paper:
///  * window-independent: a bit per absolute block id (b_1, b_2, ...);
///    "blocks added on Mondays". Meaningful under both data-span options.
///  * window-relative: w bits, one per position inside the most recent
///    window; "every other block within the past 30"; it slides with the
///    window and only exists under the most-recent-window option.
class BlockSelectionSequence {
 public:
  enum class Kind { kWindowIndependent, kWindowRelative };

  /// Window-independent BSS from an explicit prefix of bits; block id t
  /// (1-based) uses bits[t-1], ids beyond the prefix use `tail_bit`.
  static BlockSelectionSequence WindowIndependent(std::vector<bool> bits,
                                                  bool tail_bit = false);

  /// Window-independent BSS selecting every block (the common b = <11...>).
  static BlockSelectionSequence AllBlocks();

  /// Window-independent periodic BSS: selects block ids t with
  /// (t - 1) % period == phase — "every Monday" style patterns.
  static BlockSelectionSequence Periodic(size_t period, size_t phase);

  /// Window-relative BSS of exactly the window size; bits[i] selects the
  /// (i+1)-th block of the most recent window (oldest first).
  static BlockSelectionSequence WindowRelative(std::vector<bool> bits);

  Kind kind() const { return kind_; }
  bool is_window_relative() const { return kind_ == Kind::kWindowRelative; }

  /// Window-independent only: whether block `id` is selected.
  bool SelectsBlock(BlockId id) const;

  /// Window-relative only: the per-position bits (size == window size).
  const std::vector<bool>& window_bits() const;

  /// The k-projection of a window-independent BSS onto a window of size w
  /// ending at block t (paper §3.2.1): w bits whose first k are zero and
  /// whose remaining entries are the bits of blocks t-w+1+k .. t.
  std::vector<bool> Project(BlockId t, size_t w, size_t k) const;

  /// The k-right-shift of a window-relative BSS (paper §3.2.2): slides the
  /// bits forward by k, zero-padding on the left and truncating on the
  /// right.
  static std::vector<bool> RightShift(const std::vector<bool>& bits,
                                      size_t k);

  /// Renders "<1011...>" for experiment output (prefix only for
  /// window-independent sequences).
  std::string ToString() const;

  /// Parses the textual forms used by the CLI and config files:
  ///   "all"            -> AllBlocks()
  ///   "10110"          -> WindowIndependent prefix, tail 0
  ///   "10110..."       -> WindowIndependent prefix, tail = last bit
  ///   "periodic:7/0"   -> Periodic(7, 0)
  ///   "relative:101"   -> WindowRelative bits
  [[nodiscard]] static Result<BlockSelectionSequence> FromString(const std::string& text);

  /// Serializes this BSS (checkpointed MonitorSpecs embed one).
  void SaveTo(persistence::Writer& w) const;

  /// Restores a BSS saved by SaveTo; corruption yields DataLoss.
  [[nodiscard]] static Result<BlockSelectionSequence> LoadFrom(
      persistence::Reader& r);

 private:
  BlockSelectionSequence(Kind kind, std::vector<bool> bits, bool tail_bit,
                         size_t period, size_t phase)
      : kind_(kind),
        bits_(std::move(bits)),
        tail_bit_(tail_bit),
        period_(period),
        phase_(phase) {}

  Kind kind_;
  std::vector<bool> bits_;
  bool tail_bit_ = false;
  /// period_ > 0 means periodic window-independent form.
  size_t period_ = 0;
  size_t phase_ = 0;
};

}  // namespace demon

#endif  // DEMON_CORE_BSS_H_
