#include "core/monitor_spec.h"

#include "persistence/block_codec.h"

namespace demon {

const char* MonitorKindToString(MonitorKind kind) {
  switch (kind) {
    case MonitorKind::kUnrestrictedItemsets:
      return "unrestricted-itemsets";
    case MonitorKind::kWindowedItemsets:
      return "windowed-itemsets";
    case MonitorKind::kUnrestrictedClusters:
      return "unrestricted-clusters";
    case MonitorKind::kWindowedClusters:
      return "windowed-clusters";
    case MonitorKind::kClassifier:
      return "classifier";
    case MonitorKind::kPatterns:
      return "patterns";
  }
  return "unknown";
}

void SaveMonitorSpec(persistence::Writer& w, const MonitorSpec& spec) {
  w.WriteU8(static_cast<uint8_t>(spec.kind));
  w.WriteString(spec.name);
  spec.bss.SaveTo(w);
  w.WriteU64(spec.window);
  w.WriteDouble(spec.minsup);
  w.WriteU8(static_cast<uint8_t>(spec.strategy));
  w.WriteU64(spec.dim);
  w.WriteU64(spec.birch.tree.branching);
  w.WriteU64(spec.birch.tree.leaf_capacity);
  w.WriteU64(spec.birch.tree.max_leaf_entries);
  w.WriteDouble(spec.birch.tree.initial_threshold);
  w.WriteU64(spec.birch.num_clusters);
  w.WriteU8(static_cast<uint8_t>(spec.birch.phase2));
  w.WriteU64(spec.birch.seed);
  w.WriteU64(spec.birch.kmeans_max_iterations);
  persistence::WriteLabeledSchema(w, spec.schema);
  w.WriteDouble(spec.dtree.min_split_weight);
  w.WriteDouble(spec.dtree.min_gain);
  w.WriteU64(spec.dtree.max_depth);
  w.WriteDouble(spec.alpha);
  w.WriteU64(spec.tidlist_budget_bytes);
  w.WriteString(spec.tidlist_spill_dir);
}

Result<MonitorSpec> LoadMonitorSpec(persistence::Reader& r,
                                    uint32_t checkpoint_version) {
  MonitorSpec spec;
  const uint8_t kind = r.ReadU8();
  spec.name = r.ReadString();
  DEMON_ASSIGN_OR_RETURN(spec.bss,
                         BlockSelectionSequence::LoadFrom(r));
  spec.window = r.ReadU64();
  spec.minsup = r.ReadDouble();
  const uint8_t strategy = r.ReadU8();
  spec.dim = r.ReadU64();
  spec.birch.tree.branching = r.ReadU64();
  spec.birch.tree.leaf_capacity = r.ReadU64();
  spec.birch.tree.max_leaf_entries = r.ReadU64();
  spec.birch.tree.initial_threshold = r.ReadDouble();
  spec.birch.num_clusters = r.ReadU64();
  const uint8_t phase2 = r.ReadU8();
  spec.birch.seed = r.ReadU64();
  spec.birch.kmeans_max_iterations = r.ReadU64();
  spec.schema = persistence::ReadLabeledSchema(r);
  spec.dtree.min_split_weight = r.ReadDouble();
  spec.dtree.min_gain = r.ReadDouble();
  spec.dtree.max_depth = r.ReadU64();
  spec.alpha = r.ReadDouble();
  if (checkpoint_version >= 2) {
    spec.tidlist_budget_bytes = r.ReadU64();
    spec.tidlist_spill_dir = r.ReadString();
  }
  if (!r.ok()) return r.status();
  if (kind < static_cast<uint8_t>(MonitorKind::kUnrestrictedItemsets) ||
      kind > static_cast<uint8_t>(MonitorKind::kPatterns)) {
    return Status::DataLoss("unknown monitor kind " + std::to_string(kind));
  }
  spec.kind = static_cast<MonitorKind>(kind);
  if (strategy > static_cast<uint8_t>(CountingStrategy::kEcutPlus)) {
    return Status::DataLoss("unknown counting strategy " +
                            std::to_string(strategy));
  }
  spec.strategy = static_cast<CountingStrategy>(strategy);
  if (phase2 > static_cast<uint8_t>(Phase2Algorithm::kAgglomerative)) {
    return Status::DataLoss("unknown phase-2 algorithm " +
                            std::to_string(phase2));
  }
  spec.birch.phase2 = static_cast<Phase2Algorithm>(phase2);
  return spec;
}

}  // namespace demon
