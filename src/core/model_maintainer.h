#ifndef DEMON_CORE_MODEL_MAINTAINER_H_
#define DEMON_CORE_MODEL_MAINTAINER_H_

#include <memory>
#include <string_view>
#include <variant>

#include "common/audit.h"
#include "common/check.h"
#include "common/status.h"
#include "data/block.h"
#include "dtree/labeled_block.h"

namespace demon {

namespace persistence {
class Writer;
class Reader;
}  // namespace persistence

class ItemsetModel;
class ClusterModel;
class DecisionTree;
class CompactSequenceMiner;
class ThreadPool;

namespace telemetry {
class TelemetryRegistry;
}  // namespace telemetry

/// \brief A block of any record type the system monitors, held by
/// shared_ptr exactly as the snapshots store it. The evolving database of
/// Figure 11 fans one arriving block out to many model maintainers; this
/// wrapper lets that fan-out traverse a single dispatch path even though
/// itemset, cluster and classifier maintainers consume different record
/// types.
class AnyBlock {
 public:
  /// Enumerator order must match the variant alternative order below.
  enum class Payload { kTransactions = 0, kPoints = 1, kLabeled = 2 };

  using TxPtr = std::shared_ptr<const TransactionBlock>;
  using PointPtr = std::shared_ptr<const PointBlock>;
  using LabeledPtr = std::shared_ptr<const LabeledBlock>;

  // NOLINTNEXTLINE(google-explicit-constructor): blocks convert freely.
  AnyBlock(TxPtr block) : block_(std::move(block)) { CheckHeld(); }
  // NOLINTNEXTLINE(google-explicit-constructor)
  AnyBlock(PointPtr block) : block_(std::move(block)) { CheckHeld(); }
  // NOLINTNEXTLINE(google-explicit-constructor)
  AnyBlock(LabeledPtr block) : block_(std::move(block)) { CheckHeld(); }

  Payload payload() const { return static_cast<Payload>(block_.index()); }

  const BlockInfo& info() const {
    return std::visit([](const auto& ptr) -> const BlockInfo& {
      return ptr->info();
    }, block_);
  }
  BlockId id() const { return info().id; }

  /// Number of records in the block, whatever the payload.
  size_t size() const {
    return std::visit([](const auto& ptr) { return ptr->size(); }, block_);
  }

  /// Typed views; each requires the matching payload.
  const TxPtr& transactions() const { return std::get<TxPtr>(block_); }
  const PointPtr& points() const { return std::get<PointPtr>(block_); }
  const LabeledPtr& labeled() const { return std::get<LabeledPtr>(block_); }

 private:
  void CheckHeld() const {
    std::visit([](const auto& ptr) { DEMON_CHECK(ptr != nullptr); }, block_);
  }

  std::variant<TxPtr, PointPtr, LabeledPtr> block_;
};

/// Short payload name for stats output ("transactions", "points", ...).
const char* ToString(AnyBlock::Payload payload);

/// \brief How the maintained model changed over the last absorbed block —
/// the per-monitor evolution signal (adds/removes/churn) that the engine
/// publishes as `evolution/<monitor>/<name>` gauges, folds into
/// MonitorStats, and that alert policies threshold on.
///
/// `elements` is whatever the model class counts — frequent itemsets for
/// BORDERS/GEMM, CF entries for BIRCH+, tree nodes for the classifier,
/// compact sequences for the pattern miner. `added`/`removed` compare the
/// element *identities* before and after the block (itemsets by contents,
/// subclusters and tree nodes by structural position), and
///
///     churn = (added + removed) / max(|before|, |after|, 1)
///
/// so 0 means a stationary model and values near 1 mean wholesale
/// replacement — a recount of the model against the previous block's
/// element set must reproduce these numbers exactly (the golden timeline
/// test does). `aux` carries one model-specific drift scalar: negative-
/// border size for itemsets, mean CF-radius drift for BIRCH+, rebuild
/// count for structures that re-derive wholesale.
struct EvolutionStats {
  uint64_t blocks = 0;    ///< Blocks absorbed (0 = nothing to describe).
  uint64_t elements = 0;  ///< Element count after the last block.
  uint64_t added = 0;     ///< Elements gained over the last block.
  uint64_t removed = 0;   ///< Elements lost over the last block.
  double churn = 0.0;     ///< (added+removed)/max(before, after, 1).
  /// Up to two model-specific drift scalars; a null name means absent.
  /// The engine publishes `evolution/<monitor>/<aux_name>` for each.
  double aux = 0.0;
  const char* aux_name = nullptr;
  double aux2 = 0.0;
  const char* aux2_name = nullptr;
};

/// \brief The type-erased model maintainer of Figure 11: one registered
/// monitor, whatever its model class (frequent itemsets, clusters,
/// decision tree, compact-sequence patterns) and data-span option
/// (unrestricted or GEMM-windowed).
///
/// The update of a block splits in two, following §3.2.3:
///
///  * `AddResponse` — the time-critical path. For an unrestricted
///    maintainer this is the whole update; for a GEMM-backed maintainer it
///    is the single A_M invocation on the model whose window just became
///    current.
///  * `RunOffline` — the deferrable remainder (GEMM's future-window
///    updates). The MaintenanceEngine may run it on a worker thread after
///    the response has been reported, provided it completes before the
///    next block reaches this maintainer.
///
/// `AddBlock` composes both inline for callers that do not schedule
/// offline work separately. Implementations only ever see blocks whose
/// payload matches `payload()` — the engine routes by payload — and may
/// DEMON_CHECK that invariant.
class ModelMaintainer {
 public:
  virtual ~ModelMaintainer() = default;

  /// Short kind label for stats output (e.g. "borders", "gemm-itemsets").
  virtual std::string_view type_name() const = 0;

  /// The record type this maintainer consumes.
  virtual AnyBlock::Payload payload() const = 0;

  /// Full update: response path plus offline remainder, inline.
  void AddBlock(const AnyBlock& block) {
    AddResponse(block);
    RunOffline();
  }

  /// Time-critical part of absorbing `block` (see class comment).
  virtual void AddResponse(const AnyBlock& block) = 0;

  /// Deferrable remainder of the last `AddResponse`. Must be idempotent
  /// when there is no pending work; default maintainers have none.
  virtual void RunOffline() {}

  /// Whether a `RunOffline` call is pending.
  virtual bool has_offline_work() const { return false; }

  /// Offers this maintainer a thread pool for *internal* parallelism
  /// (today: the itemset counting kernel). The MaintenanceEngine calls
  /// this at registration with its own pool, so one pool serves both
  /// monitor-level fan-out and counting-level sharding; sub-work must be
  /// scheduled with ParallelFor (never WaitIdle) so nesting cannot
  /// deadlock. Maintainers without internal parallelism ignore the offer.
  /// `pool` outlives the maintainer; null revokes a previous offer.
  virtual void BindThreadPool(ThreadPool* /*pool*/) {}

  /// Offers this maintainer a telemetry registry for child spans and
  /// kernel counters under the engine's per-(block, monitor) spans. The
  /// MaintenanceEngine calls this at registration with its registry (the
  /// engine-owned one unless EngineOptions injected another). `registry`
  /// outlives the maintainer; null revokes. In DEMON_TELEMETRY=OFF builds
  /// implementations keep their pointers null so every instrumentation
  /// macro stays a no-op. Maintainers without instrumentation ignore it.
  virtual void BindTelemetry(telemetry::TelemetryRegistry* /*registry*/) {}

  /// Describes how the model changed over the last absorbed block (see
  /// EvolutionStats). Called by the MaintenanceEngine at the quiesced
  /// point of each dispatch — after the response barrier, before offline
  /// work is queued — so implementations may read their model without
  /// locking. Active in every build (like MonitorStats, this is part of
  /// the stats contract, not gated telemetry). Default: all zeros, for
  /// maintainers with nothing to report.
  virtual EvolutionStats DescribeEvolution() const { return {}; }

  /// Deep invariant audit of the maintained structures, called by the
  /// MaintenanceEngine at block boundaries in DEMON_AUDIT builds (and by
  /// the corruption-injection tests in every build). Implementations must
  /// only be called at a quiesced boundary — no offline work pending — and
  /// append violations rather than aborting, so the engine can attach
  /// monitor context before escalating. Default: nothing to audit.
  virtual void AuditInvariants(audit::AuditResult* /*audit*/) const {}

  // --- Checkpointable extension -------------------------------------------
  //
  // Durable state capture for DemonMonitor::Checkpoint/Restore. SaveState
  // must serialize everything needed to continue *bit-identically* from
  // this point; block data is written as BlockId references (the
  // checkpoint container persists the snapshots once, and the Reader's
  // BlockSource re-resolves shared pointers on load). Both are only called
  // at a quiesced block boundary. LoadState is called on a freshly
  // constructed maintainer whose configuration (options, schema, BSS) has
  // already been re-established from the registered MonitorSpec.

  /// Serializes the maintainer's dynamic state into `w`.
  [[nodiscard]] virtual Status SaveState(persistence::Writer& /*w*/) const {
    return Status::NotImplemented(std::string(type_name()) +
                                  " maintainer does not support checkpoints");
  }

  /// Restores state saved by `SaveState`. Corruption surfaces as DataLoss,
  /// configuration mismatches as InvalidArgument.
  [[nodiscard]] virtual Status LoadState(persistence::Reader& /*r*/) {
    return Status::NotImplemented(std::string(type_name()) +
                                  " maintainer does not support checkpoints");
  }

  /// Typed model accessors. Each returns InvalidArgument unless this
  /// maintainer maintains that model class; windowed maintainers return
  /// FailedPrecondition before the first block arrives (no current model
  /// exists yet).
  [[nodiscard]] virtual Result<const ItemsetModel*> itemset_model() const {
    return WrongKind("an itemset model");
  }
  [[nodiscard]] virtual Result<const ClusterModel*> cluster_model() const {
    return WrongKind("a cluster model");
  }
  [[nodiscard]] virtual Result<const DecisionTree*> dtree_model() const {
    return WrongKind("a decision-tree model");
  }
  [[nodiscard]] virtual Result<const CompactSequenceMiner*> pattern_miner() const {
    return WrongKind("a compact-sequence miner");
  }

 private:
  [[nodiscard]] Status WrongKind(const char* what) const {
    return Status::InvalidArgument(std::string(type_name()) +
                                   " monitor does not maintain " + what);
  }
};

}  // namespace demon

#endif  // DEMON_CORE_MODEL_MAINTAINER_H_
