#include "core/block_ops.h"

#include <algorithm>

#include "common/check.h"

namespace demon {

TransactionBlock MergeBlocks(
    const std::vector<const TransactionBlock*>& blocks) {
  DEMON_CHECK(!blocks.empty());
  std::vector<Transaction> transactions;
  size_t total = 0;
  for (const TransactionBlock* block : blocks) total += block->size();
  transactions.reserve(total);
  int64_t start_time = blocks.front()->info().start_time;
  int64_t end_time = blocks.front()->info().end_time;
  for (const TransactionBlock* block : blocks) {
    transactions.insert(transactions.end(), block->transactions().begin(),
                        block->transactions().end());
    start_time = std::min(start_time, block->info().start_time);
    end_time = std::max(end_time, block->info().end_time);
  }
  TransactionBlock merged(std::move(transactions),
                          blocks.front()->first_tid());
  merged.mutable_info()->start_time = start_time;
  merged.mutable_info()->end_time = end_time;
  merged.mutable_info()->label = blocks.front()->info().label +
                                 (blocks.size() > 1 ? " .. " : "") +
                                 (blocks.size() > 1
                                      ? blocks.back()->info().label
                                      : "");
  return merged;
}

std::vector<TransactionBlock> CoarsenBlocks(
    const std::vector<TransactionBlock>& blocks, size_t factor) {
  DEMON_CHECK(factor >= 1);
  std::vector<TransactionBlock> merged;
  for (size_t begin = 0; begin < blocks.size(); begin += factor) {
    const size_t end = std::min(begin + factor, blocks.size());
    std::vector<const TransactionBlock*> group;
    for (size_t i = begin; i < end; ++i) group.push_back(&blocks[i]);
    merged.push_back(MergeBlocks(group));
  }
  return merged;
}

}  // namespace demon
