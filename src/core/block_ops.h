#ifndef DEMON_CORE_BLOCK_OPS_H_
#define DEMON_CORE_BLOCK_OPS_H_

#include <vector>

#include "data/block.h"

namespace demon {

/// \brief Merges consecutive blocks into one (paper §2.1: hierarchies on
/// the time dimension are handled by "merging all blocks that fall under
/// the same parent" — e.g. day blocks into a week block). The merged
/// block keeps the first block's first TID and spans the union of the
/// inputs' time intervals.
TransactionBlock MergeBlocks(const std::vector<const TransactionBlock*>& blocks);

/// \brief Coarsens a block sequence by merging every `factor` consecutive
/// blocks (the last group may be smaller). factor >= 1.
std::vector<TransactionBlock> CoarsenBlocks(
    const std::vector<TransactionBlock>& blocks, size_t factor);

}  // namespace demon

#endif  // DEMON_CORE_BLOCK_OPS_H_
