#ifndef DEMON_DATAGEN_QUEST_GENERATOR_H_
#define DEMON_DATAGEN_QUEST_GENERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "data/block.h"
#include "data/types.h"

namespace demon {

/// \brief Parameters of the IBM Quest synthetic market-basket generator
/// (Agrawal & Srikant, VLDB'94), the workload used throughout the paper's
/// itemset experiments (§5.1).
///
/// The paper's dataset naming `N M.tl L.|I|I.Np pats.p plen` maps to:
/// `num_transactions` (N millions), `avg_transaction_len` (tl),
/// `num_items` (|I| thousands), `num_patterns` (Np thousands),
/// `avg_pattern_len` (p).
struct QuestParams {
  /// Number of transactions to generate (|D|).
  size_t num_transactions = 100000;
  /// Average transaction length |T| (Poisson distributed).
  double avg_transaction_len = 20.0;
  /// Size of the item universe N.
  size_t num_items = 1000;
  /// Number of maximal potentially-large itemsets |L|.
  size_t num_patterns = 4000;
  /// Average pattern length |I| (Poisson distributed, minimum 1).
  double avg_pattern_len = 4.0;
  /// Mean fraction of a pattern's items drawn from its predecessor
  /// (exponentially distributed per pattern). AS94 default: 0.5.
  double correlation = 0.5;
  /// Corruption level distribution N(mean, sd) clipped to [0, 1).
  double corruption_mean = 0.5;
  double corruption_sd = 0.1;
  uint64_t seed = 42;

  /// Paper-style name, e.g. "100K.20L.1I.4pats.4plen".
  std::string ToString() const;
};

/// \brief Streaming Quest generator. The pattern table (itemsets, weights,
/// corruption levels) is fixed at construction; transactions are drawn from
/// it on demand, so a database can be evolved block by block from one
/// generator, or blocks with *different* distribution parameters can come
/// from distinct generators sharing an item universe (as in Figs 4-7, where
/// the second block uses 8pats.4plen or 4pats.5plen).
class QuestGenerator {
 public:
  explicit QuestGenerator(const QuestParams& params);

  /// Generates the next `n` transactions as a block whose first TID is
  /// `first_tid`. Thread-compatible (single generator, sequential calls).
  TransactionBlock NextBlock(size_t n, Tid first_tid);

  /// Generates all `params.num_transactions` transactions as one block.
  TransactionBlock GenerateAll(Tid first_tid = 0) {
    return NextBlock(params_.num_transactions, first_tid);
  }

  const QuestParams& params() const { return params_; }

  /// The generated pattern table (exposed for tests).
  const std::vector<std::vector<Item>>& patterns() const { return patterns_; }

 private:
  Transaction NextTransaction();

  QuestParams params_;
  Rng rng_;
  std::vector<std::vector<Item>> patterns_;
  std::vector<double> corruption_;
  std::unique_ptr<AliasSampler> pattern_sampler_;
  /// Pattern carried over to the next transaction when it did not fit
  /// (AS94: "assigned to the next transaction half the time").
  std::vector<Item> carry_over_;
  bool has_carry_over_ = false;
};

}  // namespace demon

#endif  // DEMON_DATAGEN_QUEST_GENERATOR_H_
