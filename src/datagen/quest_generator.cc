#include "datagen/quest_generator.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/check.h"

namespace demon {

namespace {

// Formats counts the way the paper does: 2000000 -> "2M", 400000 -> "400K".
std::string FormatCount(size_t n) {
  if (n % 1000000 == 0 && n >= 1000000) {
    return std::to_string(n / 1000000) + "M";
  }
  if (n % 1000 == 0 && n >= 1000) {
    return std::to_string(n / 1000) + "K";
  }
  return std::to_string(n);
}

std::string FormatShort(double v) {
  if (v == std::floor(v)) return std::to_string(static_cast<long>(v));
  std::string s = std::to_string(v);
  while (!s.empty() && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s;
}

}  // namespace

std::string QuestParams::ToString() const {
  std::string out = FormatCount(num_transactions);
  out += ".";
  out += FormatShort(avg_transaction_len) + "L.";
  out += std::to_string(num_items / 1000) + "I.";
  out += std::to_string(num_patterns / 1000) + "pats.";
  out += FormatShort(avg_pattern_len) + "plen";
  return out;
}

QuestGenerator::QuestGenerator(const QuestParams& params)
    : params_(params), rng_(params.seed) {
  DEMON_CHECK(params_.num_items >= 2);
  DEMON_CHECK(params_.num_patterns >= 1);
  DEMON_CHECK(params_.avg_pattern_len >= 1.0);
  DEMON_CHECK(params_.avg_transaction_len >= 1.0);

  patterns_.reserve(params_.num_patterns);
  corruption_.reserve(params_.num_patterns);
  std::vector<double> weights;
  weights.reserve(params_.num_patterns);

  for (size_t p = 0; p < params_.num_patterns; ++p) {
    // Pattern size: Poisson around the mean, at least one item.
    int size = rng_.NextPoisson(params_.avg_pattern_len - 1.0) + 1;
    size = std::min<int>(size, static_cast<int>(params_.num_items));

    std::unordered_set<Item> chosen;
    // An exponentially distributed fraction of items comes from the
    // previous pattern (AS94's correlation model).
    if (!patterns_.empty()) {
      double fraction = rng_.NextExponential(params_.correlation);
      fraction = std::min(fraction, 1.0);
      const auto& prev = patterns_.back();
      const int from_prev = std::min<int>(
          static_cast<int>(std::lround(fraction * size)),
          static_cast<int>(prev.size()));
      std::vector<Item> pool = prev;
      rng_.Shuffle(&pool);
      for (int i = 0; i < from_prev; ++i) chosen.insert(pool[i]);
    }
    while (static_cast<int>(chosen.size()) < size) {
      chosen.insert(static_cast<Item>(rng_.NextUint64(params_.num_items)));
    }
    std::vector<Item> pattern(chosen.begin(), chosen.end());
    std::sort(pattern.begin(), pattern.end());
    patterns_.push_back(std::move(pattern));

    weights.push_back(rng_.NextExponential(1.0));

    double c = rng_.NextGaussian(params_.corruption_mean,
                                 params_.corruption_sd);
    corruption_.push_back(std::clamp(c, 0.0, 0.99));
  }
  pattern_sampler_ = std::make_unique<AliasSampler>(weights);
}

Transaction QuestGenerator::NextTransaction() {
  // Transaction length: Poisson around the mean, at least 1.
  int target = rng_.NextPoisson(params_.avg_transaction_len - 1.0) + 1;
  target = std::min<int>(target, static_cast<int>(params_.num_items));

  std::vector<Item> items;
  items.reserve(target + 8);

  while (static_cast<int>(items.size()) < target) {
    std::vector<Item> picked;
    if (has_carry_over_) {
      picked = std::move(carry_over_);
      has_carry_over_ = false;
    } else {
      const size_t idx = pattern_sampler_->Sample(&rng_);
      const auto& pattern = patterns_[idx];
      const double c = corruption_[idx];
      // Corruption: repeatedly drop one random item while uniform < c.
      picked = pattern;
      while (picked.size() > 1 && rng_.NextDouble() < c) {
        const size_t drop = static_cast<size_t>(
            rng_.NextUint64(picked.size()));
        picked[drop] = picked.back();
        picked.pop_back();
      }
    }
    const int remaining = target - static_cast<int>(items.size());
    if (static_cast<int>(picked.size()) > remaining && !items.empty()) {
      // Does not fit: half the time force it in anyway, otherwise carry it
      // over to the next transaction (AS94 semantics).
      if (rng_.NextBernoulli(0.5)) {
        items.insert(items.end(), picked.begin(), picked.end());
      } else {
        carry_over_ = std::move(picked);
        has_carry_over_ = true;
      }
      break;
    }
    items.insert(items.end(), picked.begin(), picked.end());
  }
  if (items.empty()) {
    items.push_back(static_cast<Item>(rng_.NextUint64(params_.num_items)));
  }
  return Transaction(std::move(items));
}

TransactionBlock QuestGenerator::NextBlock(size_t n, Tid first_tid) {
  std::vector<Transaction> transactions;
  transactions.reserve(n);
  for (size_t i = 0; i < n; ++i) transactions.push_back(NextTransaction());
  return TransactionBlock(std::move(transactions), first_tid);
}

}  // namespace demon
