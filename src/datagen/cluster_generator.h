#ifndef DEMON_DATAGEN_CLUSTER_GENERATOR_H_
#define DEMON_DATAGEN_CLUSTER_GENERATOR_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "data/block.h"
#include "data/point.h"

namespace demon {

/// \brief Parameters of the synthetic cluster generator used for the BIRCH+
/// experiments (paper §5.2, generator of Agrawal et al. [AGGR98]).
///
/// The paper's naming `N M.Kc.dd` maps to `num_points` (N millions),
/// `num_clusters` (K), `dim` (d). Noise points are sampled uniformly over
/// the domain (the paper perturbs with 2% uniform noise).
struct ClusterGenParams {
  size_t num_points = 100000;
  size_t num_clusters = 50;
  size_t dim = 5;
  /// Coordinates of cluster centers are uniform in [0, domain_size]^d.
  double domain_size = 100.0;
  /// Per-cluster standard deviations are uniform in [min_sigma, max_sigma].
  double min_sigma = 0.5;
  double max_sigma = 2.0;
  /// Fraction of points drawn uniformly over the domain instead of from a
  /// cluster (paper uses 0.02).
  double noise_fraction = 0.0;
  uint64_t seed = 42;

  /// Paper-style name, e.g. "100K.50c.5d".
  std::string ToString() const;
};

/// \brief Streaming generator of Gaussian clusters with uniform noise.
/// The cluster layout (centers, sigmas, mixing weights) is fixed at
/// construction so successive blocks come from the same distribution —
/// exactly the setting BIRCH+ assumes when resuming phase 1.
class ClusterGenerator {
 public:
  explicit ClusterGenerator(const ClusterGenParams& params);

  /// Generates the next `n` points as a block.
  PointBlock NextBlock(size_t n);

  /// Generates all `params.num_points` points as one block.
  PointBlock GenerateAll() { return NextBlock(params_.num_points); }

  const ClusterGenParams& params() const { return params_; }
  const std::vector<Point>& centers() const { return centers_; }
  const std::vector<double>& sigmas() const { return sigmas_; }

  /// Index of the true cluster (or -1 for noise) of every point generated
  /// so far, in generation order. Used by tests to score clusterings.
  const std::vector<int>& true_labels() const { return labels_; }

 private:
  ClusterGenParams params_;
  Rng rng_;
  std::vector<Point> centers_;
  std::vector<double> sigmas_;
  std::vector<double> weights_;
  std::vector<int> labels_;
};

}  // namespace demon

#endif  // DEMON_DATAGEN_CLUSTER_GENERATOR_H_
