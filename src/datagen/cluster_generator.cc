#include "datagen/cluster_generator.h"

#include <cmath>

#include "common/check.h"

namespace demon {

std::string ClusterGenParams::ToString() const {
  std::string out;
  if (num_points % 1000000 == 0 && num_points >= 1000000) {
    out = std::to_string(num_points / 1000000) + "M";
  } else if (num_points % 1000 == 0 && num_points >= 1000) {
    out = std::to_string(num_points / 1000) + "K";
  } else {
    out = std::to_string(num_points);
  }
  // Appended piecewise: chained operator+ trips GCC 12's -Wrestrict false
  // positive (PR105329) under -O2, which -Werror builds turn fatal.
  out += ".";
  out += std::to_string(num_clusters);
  out += "c.";
  out += std::to_string(dim);
  out += "d";
  return out;
}

ClusterGenerator::ClusterGenerator(const ClusterGenParams& params)
    : params_(params), rng_(params.seed) {
  DEMON_CHECK(params_.num_clusters >= 1);
  DEMON_CHECK(params_.dim >= 1);
  DEMON_CHECK(params_.min_sigma > 0.0);
  DEMON_CHECK(params_.max_sigma >= params_.min_sigma);
  DEMON_CHECK(params_.noise_fraction >= 0.0 && params_.noise_fraction < 1.0);

  centers_.reserve(params_.num_clusters);
  sigmas_.reserve(params_.num_clusters);
  weights_.reserve(params_.num_clusters);
  for (size_t k = 0; k < params_.num_clusters; ++k) {
    Point center(params_.dim);
    for (double& c : center) c = rng_.NextDouble() * params_.domain_size;
    centers_.push_back(std::move(center));
    sigmas_.push_back(params_.min_sigma +
                      rng_.NextDouble() *
                          (params_.max_sigma - params_.min_sigma));
    // Mildly uneven mixing weights.
    weights_.push_back(0.5 + rng_.NextDouble());
  }
}

PointBlock ClusterGenerator::NextBlock(size_t n) {
  AliasSampler sampler(weights_);
  std::vector<double> coords;
  coords.reserve(n * params_.dim);
  labels_.reserve(labels_.size() + n);
  for (size_t i = 0; i < n; ++i) {
    if (rng_.NextBernoulli(params_.noise_fraction)) {
      for (size_t d = 0; d < params_.dim; ++d) {
        coords.push_back(rng_.NextDouble() * params_.domain_size);
      }
      labels_.push_back(-1);
      continue;
    }
    const size_t k = sampler.Sample(&rng_);
    const Point& center = centers_[k];
    const double sigma = sigmas_[k];
    for (size_t d = 0; d < params_.dim; ++d) {
      coords.push_back(rng_.NextGaussian(center[d], sigma));
    }
    labels_.push_back(static_cast<int>(k));
  }
  return PointBlock(std::move(coords), params_.dim);
}

}  // namespace demon
