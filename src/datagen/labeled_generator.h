#ifndef DEMON_DATAGEN_LABELED_GENERATOR_H_
#define DEMON_DATAGEN_LABELED_GENERATOR_H_

#include <memory>

#include "common/random.h"
#include "dtree/decision_tree.h"
#include "dtree/labeled_block.h"

namespace demon {

/// \brief Synthetic labeled-data generator for the decision-tree model
/// class: attribute vectors are uniform over the schema; labels come from
/// a hidden random decision tree ("concept") plus label noise — the
/// classic setup of the incremental-classifier literature (and of the
/// generators in [GGRL99b]).
///
/// Two generators with different seeds embody different concepts, which
/// is how concept drift between blocks is simulated.
class LabeledGenerator {
 public:
  struct Params {
    LabeledSchema schema;
    /// Depth of the hidden concept tree (root = depth 1).
    size_t concept_depth = 4;
    /// Probability a record's label is flipped to a random class.
    double label_noise = 0.05;
    uint64_t seed = 42;
  };

  explicit LabeledGenerator(const Params& params);

  /// Generates the next `n` records.
  LabeledBlock NextBlock(size_t n);

  /// Noise-free label of an attribute vector under the hidden concept.
  uint32_t TrueLabel(const std::vector<uint32_t>& attributes) const;

  const Params& params() const { return params_; }
  /// The hidden concept, exposed for tests.
  const DecisionTree& concept_tree() const { return concept_; }

 private:
  Params params_;
  Rng rng_;
  DecisionTree concept_;
};

}  // namespace demon

#endif  // DEMON_DATAGEN_LABELED_GENERATOR_H_
