#include "datagen/trace_generator.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/check.h"

namespace demon {

namespace {

// Requests per hour in each regime (before rate_scale).
double RegimeRate(TraceGenerator::Regime regime) {
  switch (regime) {
    case TraceGenerator::Regime::kWorkdayDay:
      return 3200.0;
    case TraceGenerator::Regime::kWorkdayNoon:
      return 3600.0;
    case TraceGenerator::Regime::kEveningTueThu:
      return 1800.0;
    case TraceGenerator::Regime::kEveningOther:
      return 1500.0;
    case TraceGenerator::Regime::kNight:
      return 500.0;
    case TraceGenerator::Regime::kWeekend:
      return 900.0;
    case TraceGenerator::Regime::kAnomaly:
      return 2800.0;
  }
  return 0.0;
}

// Object-type mixing weights per regime. kNight intentionally equals
// kWeekend: the paper observes late-night weekday blocks similar to
// weekend blocks (§5.3).
const std::array<double, TraceGenerator::kNumObjectTypes>& RegimeTypeWeights(
    TraceGenerator::Regime regime) {
  using Regime = TraceGenerator::Regime;
  static const std::array<double, 10> kWorkday = {30, 25, 14, 9, 7, 5, 4, 3,
                                                  2, 1};
  static const std::array<double, 10> kNoon = {34, 24, 13, 9, 7, 5, 3, 3, 1,
                                               1};
  static const std::array<double, 10> kTueThu = {22, 20, 18, 14, 9, 6, 5, 3,
                                                 2, 1};
  static const std::array<double, 10> kOtherEve = {26, 22, 16, 11, 8, 6, 5,
                                                   3, 2, 1};
  static const std::array<double, 10> kWeekend = {12, 14, 10, 10, 16, 12, 10,
                                                  8, 5, 3};
  static const std::array<double, 10> kAnomaly = {4, 5, 6, 8, 10, 12, 14, 15,
                                                  13, 13};
  switch (regime) {
    case Regime::kWorkdayDay:
      return kWorkday;
    case Regime::kWorkdayNoon:
      return kNoon;
    case Regime::kEveningTueThu:
      return kTueThu;
    case Regime::kEveningOther:
      return kOtherEve;
    case Regime::kNight:
    case Regime::kWeekend:
      return kWeekend;
    case Regime::kAnomaly:
      return kAnomaly;
  }
  return kWorkday;
}

// Geometric success probability of the response-size distribution per
// regime; smaller p = heavier tail (bigger responses).
double RegimeSizeP(TraceGenerator::Regime regime) {
  using Regime = TraceGenerator::Regime;
  switch (regime) {
    case Regime::kWorkdayDay:
      return 0.20;
    case Regime::kWorkdayNoon:
      return 0.22;
    case Regime::kEveningTueThu:
      return 0.10;
    case Regime::kEveningOther:
      return 0.14;
    case Regime::kNight:
    case Regime::kWeekend:
      return 0.06;
    case Regime::kAnomaly:
      return 0.025;
  }
  return 0.2;
}

const char* kDayNames[7] = {"Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"};

// Days in September 1996 covered by the trace start on the 2nd.
void HourToDate(int hour, int* month_day, int* hh) {
  const int day_index = hour / 24;  // 0 = Sep 2
  *month_day = 2 + day_index;       // trace ends Sep 22, stays in September
  *hh = hour % 24;
}

}  // namespace

TraceGenerator::TraceGenerator(const Params& params)
    : params_(params), rng_(params.seed) {
  DEMON_CHECK(params_.rate_scale > 0.0);
}

TraceGenerator::Regime TraceGenerator::RegimeAt(int hour) {
  const int day_index = hour / 24;  // 0 = Mon Sep 2
  const int dow = day_index % 7;    // 0 = Monday
  const int hh = hour % 24;

  if (day_index == 7) return Regime::kAnomaly;             // Mon 9-9.
  if (day_index == 0) return Regime::kWeekend;             // Labor Day 9-2.
  if (dow >= 5) return Regime::kWeekend;                   // Sat/Sun.
  // Working day.
  if (hh >= 8 && hh < 12) return Regime::kWorkdayDay;
  if (hh >= 12 && hh < 16) return Regime::kWorkdayNoon;
  const bool tue_thu = (dow == 1 || dow == 3);
  if (hh >= 16 && hh < 20) {
    return tue_thu ? Regime::kEveningTueThu : Regime::kEveningOther;
  }
  if (hh >= 20 && hh < 24) {
    return tue_thu ? Regime::kEveningTueThu : Regime::kNight;
  }
  return Regime::kNight;  // 0-8AM.
}

std::string TraceGenerator::IntervalLabel(int start_hour, int end_hour) {
  int day = 0;
  int hh = 0;
  HourToDate(start_hour, &day, &hh);
  const int dow = TraceGenerator::DayOfWeek(start_hour);
  int end_day = 0;
  int end_hh = 0;
  HourToDate(end_hour, &end_day, &end_hh);
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%s 09-%02d %02d:00-%02d:00",
                kDayNames[dow], day, hh, end_hh == 0 ? 24 : end_hh);
  return std::string(buffer);
}

std::vector<TraceRequest> TraceGenerator::Generate() {
  std::vector<TraceRequest> trace;
  for (int hour = kTraceStartHour; hour < kTraceEndHour; ++hour) {
    const Regime regime = RegimeAt(hour);
    const double rate = RegimeRate(regime) * params_.rate_scale;
    const int count = rng_.NextPoisson(rate);
    const auto& type_weights = RegimeTypeWeights(regime);
    AliasSampler type_sampler(
        std::vector<double>(type_weights.begin(), type_weights.end()));
    const double size_p = RegimeSizeP(regime);
    for (int i = 0; i < count; ++i) {
      TraceRequest request;
      request.timestamp =
          static_cast<int64_t>(hour) * 3600 +
          static_cast<int64_t>(rng_.NextUint64(3600));
      request.object_type =
          static_cast<uint32_t>(type_sampler.Sample(&rng_));
      // Geometric size bucket, capped at the bucket count.
      double u = 0.0;
      do {
        u = rng_.NextDouble();
      } while (u <= 1e-300);
      uint32_t bucket = static_cast<uint32_t>(
          std::floor(std::log(u) / std::log(1.0 - size_p)));
      request.size_bucket = std::min(bucket, kNumSizeBuckets - 1);
      trace.push_back(request);
    }
  }
  std::sort(trace.begin(), trace.end(),
            [](const TraceRequest& a, const TraceRequest& b) {
              return a.timestamp < b.timestamp;
            });
  return trace;
}

std::vector<TransactionBlock> SegmentTrace(
    const std::vector<TraceRequest>& trace, int granularity_hours,
    int start_hour) {
  DEMON_CHECK(granularity_hours > 0);
  std::vector<TransactionBlock> blocks;
  Tid next_tid = 0;
  size_t pos = 0;
  // Skip requests before the segmentation origin.
  const int64_t origin = static_cast<int64_t>(start_hour) * 3600;
  while (pos < trace.size() && trace[pos].timestamp < origin) ++pos;

  for (int hour = start_hour; hour < TraceGenerator::kTraceEndHour;
       hour += granularity_hours) {
    const int end_hour =
        std::min(hour + granularity_hours, TraceGenerator::kTraceEndHour);
    const int64_t end_time = static_cast<int64_t>(end_hour) * 3600;
    std::vector<Transaction> transactions;
    while (pos < trace.size() && trace[pos].timestamp < end_time) {
      const TraceRequest& request = trace[pos];
      transactions.push_back(Transaction{
          static_cast<Item>(request.object_type),
          static_cast<Item>(TraceGenerator::kNumObjectTypes +
                            request.size_bucket)});
      ++pos;
    }
    const size_t block_size = transactions.size();
    TransactionBlock block(std::move(transactions), next_tid);
    next_tid += block_size;
    block.mutable_info()->start_time = static_cast<int64_t>(hour) * 3600;
    block.mutable_info()->end_time = end_time;
    block.mutable_info()->label =
        TraceGenerator::IntervalLabel(hour, end_hour);
    blocks.push_back(std::move(block));
  }
  return blocks;
}

}  // namespace demon
