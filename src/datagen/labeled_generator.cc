#include "datagen/labeled_generator.h"

#include "common/check.h"

namespace demon {

namespace {

// Builds a random concept tree: internal nodes split on a random unused
// attribute; leaves get a random class (stored as a unit count vector).
void BuildConcept(DecisionTree::Node* node, const LabeledSchema& schema,
                  std::vector<bool> used, size_t depth, size_t max_depth,
                  Rng* rng) {
  size_t unused = 0;
  for (bool u : used) unused += u ? 0 : 1;
  if (depth >= max_depth || unused == 0) {
    node->split_attribute = -1;
    node->class_counts.assign(schema.num_classes, 0.0);
    node->class_counts[rng->NextUint64(schema.num_classes)] = 1.0;
    return;
  }
  size_t pick = rng->NextUint64(unused);
  size_t attribute = 0;
  for (size_t a = 0; a < used.size(); ++a) {
    if (used[a]) continue;
    if (pick == 0) {
      attribute = a;
      break;
    }
    --pick;
  }
  used[attribute] = true;
  node->split_attribute = static_cast<int>(attribute);
  node->children.resize(schema.attribute_cardinalities[attribute]);
  for (auto& child : node->children) {
    child = std::make_unique<DecisionTree::Node>();
    BuildConcept(child.get(), schema, used, depth + 1, max_depth, rng);
  }
}

}  // namespace

LabeledGenerator::LabeledGenerator(const Params& params)
    : params_(params), rng_(params.seed), concept_(params.schema) {
  DEMON_CHECK(params_.schema.num_attributes() > 0);
  DEMON_CHECK(params_.schema.num_classes >= 2);
  DEMON_CHECK(params_.label_noise >= 0.0 && params_.label_noise < 1.0);
  std::vector<bool> used(params_.schema.num_attributes(), false);
  BuildConcept(concept_.mutable_root(), params_.schema, used, 1,
               params_.concept_depth, &rng_);
  concept_.AssignLeafIds();
}

uint32_t LabeledGenerator::TrueLabel(
    const std::vector<uint32_t>& attributes) const {
  LabeledRecord probe;
  probe.attributes = attributes;
  const DecisionTree::Node* leaf = concept_.Route(probe);
  for (uint32_t c = 0; c < leaf->class_counts.size(); ++c) {
    if (leaf->class_counts[c] > 0.0) return c;
  }
  return 0;
}

LabeledBlock LabeledGenerator::NextBlock(size_t n) {
  std::vector<LabeledRecord> records;
  records.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    LabeledRecord record;
    record.attributes.resize(params_.schema.num_attributes());
    for (size_t a = 0; a < record.attributes.size(); ++a) {
      record.attributes[a] = static_cast<uint32_t>(
          rng_.NextUint64(params_.schema.attribute_cardinalities[a]));
    }
    record.label = TrueLabel(record.attributes);
    if (rng_.NextBernoulli(params_.label_noise)) {
      record.label = static_cast<uint32_t>(
          rng_.NextUint64(params_.schema.num_classes));
    }
    records.push_back(std::move(record));
  }
  return LabeledBlock(params_.schema, std::move(records));
}

}  // namespace demon
