#ifndef DEMON_DATAGEN_TRACE_GENERATOR_H_
#define DEMON_DATAGEN_TRACE_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "data/block.h"
#include "data/types.h"

namespace demon {

/// \brief One synthetic web-proxy request: a timestamp (seconds since the
/// trace epoch, 1996-09-02 00:00), an object type in [0, kNumObjectTypes)
/// and a response-size bucket in [0, kNumSizeBuckets).
struct TraceRequest {
  int64_t timestamp = 0;
  uint32_t object_type = 0;
  uint32_t size_bucket = 0;
};

/// \brief Synthetic stand-in for the DEC web proxy traces of paper §5.3.
///
/// The real traces (22M requests, 21 days from 8AM 1996-09-02 to midnight
/// 1996-09-22) are no longer distributed, so this generator reproduces the
/// *structure* the experiment depends on: distinct request-mix regimes for
/// working-day daytime, Tue/Thu evenings, weekday nights, weekends (and the
/// Labor Day holiday 9-2), plus one anomalous working day (Monday 9-9)
/// whose distribution matches nothing else. Blocks cut from the trace at a
/// given granularity therefore cluster into the same kinds of compact
/// sequences the paper reports in Figure 9.
///
/// As in the paper, each request is later treated as a 2-item transaction
/// {object type, size bucket} and mined at 1% minimum support.
class TraceGenerator {
 public:
  static constexpr uint32_t kNumObjectTypes = 10;
  static constexpr uint32_t kNumSizeBuckets = 1000;
  /// Trace hours relative to the epoch: requests exist in [kTraceStartHour,
  /// kTraceEndHour) = 8AM 9-2 .. midnight 9-22 (= 00:00 9-23).
  static constexpr int kTraceStartHour = 8;
  static constexpr int kTraceEndHour = 21 * 24;

  /// The request-mix regime in force at a given hour.
  enum class Regime {
    kWorkdayDay,     ///< Working day, 8AM-4PM.
    kWorkdayNoon,    ///< Working day, 12PM-4PM sub-mix (nested in kWorkdayDay hours 12-16).
    kEveningTueThu,  ///< Tue/Thu 4PM-midnight.
    kEveningOther,   ///< Mon/Wed/Fri 4PM-8PM.
    kNight,          ///< Weekday 8PM(MWF)/midnight-8AM; similar to weekends.
    kWeekend,        ///< Sat/Sun and the 9-2 Labor Day holiday.
    kAnomaly,        ///< Monday 9-9, the paper's outlier day.
  };

  struct Params {
    /// Multiplies all request rates; 1.0 gives ~0.7M requests over the
    /// trace (the real trace had 22M; shape matters, not volume).
    double rate_scale = 1.0;
    uint64_t seed = 42;
  };

  explicit TraceGenerator(const Params& params);

  /// Generates the full 21-day trace, sorted by timestamp.
  std::vector<TraceRequest> Generate();

  /// Returns the regime in force at absolute trace hour `hour` (hours since
  /// the epoch 1996-09-02 00:00).
  static Regime RegimeAt(int hour);

  /// Day of week of absolute hour (0 = Monday .. 6 = Sunday).
  static int DayOfWeek(int hour) { return (hour / 24) % 7; }

  /// Human-readable label like "Mon 09-09 12:00-18:00" for the interval
  /// [start_hour, end_hour).
  static std::string IntervalLabel(int start_hour, int end_hour);

 private:
  Params params_;
  Rng rng_;
};

/// \brief Cuts a trace into blocks of `granularity_hours` starting at
/// absolute hour `start_hour` (paper Figure 10 numbers 6-hour blocks from
/// noon 9-2). Each request becomes the 2-item transaction
/// {object_type, kNumObjectTypes + size_bucket}. Blocks carry BlockInfo
/// labels and time bounds; empty intervals produce empty blocks.
std::vector<TransactionBlock> SegmentTrace(
    const std::vector<TraceRequest>& trace, int granularity_hours,
    int start_hour = 12);

}  // namespace demon

#endif  // DEMON_DATAGEN_TRACE_GENERATOR_H_
