#include "itemsets/support_counting.h"

#include "itemsets/counting_context.h"

namespace demon {

const char* CountingStrategyName(CountingStrategy strategy) {
  switch (strategy) {
    case CountingStrategy::kPtScan:
      return "PT-Scan";
    case CountingStrategy::kEcut:
      return "ECUT";
    case CountingStrategy::kEcutPlus:
      return "ECUT+";
  }
  return "unknown";
}

std::vector<uint64_t> PtScanCount(
    const std::vector<Itemset>& itemsets,
    const std::vector<std::shared_ptr<const TransactionBlock>>& blocks,
    CountingStats* stats) {
  CountingContext context;
  return context.PtScan(itemsets, blocks, stats);
}

std::vector<uint64_t> EcutCount(const std::vector<Itemset>& itemsets,
                                const TidListStore& store,
                                bool use_pair_lists, CountingStats* stats) {
  CountingContext context;
  return context.Ecut(itemsets, store, use_pair_lists, stats);
}

std::vector<uint64_t> CountSupports(
    CountingStrategy strategy, const std::vector<Itemset>& itemsets,
    const std::vector<std::shared_ptr<const TransactionBlock>>& blocks,
    const TidListStore& store, CountingStats* stats) {
  CountingContext context;
  return context.Count(strategy, itemsets, blocks, store, stats);
}

}  // namespace demon
