#include "itemsets/support_counting.h"

#include <algorithm>

#include "common/check.h"
#include "itemsets/prefix_tree.h"

namespace demon {

const char* CountingStrategyName(CountingStrategy strategy) {
  switch (strategy) {
    case CountingStrategy::kPtScan:
      return "PT-Scan";
    case CountingStrategy::kEcut:
      return "ECUT";
    case CountingStrategy::kEcutPlus:
      return "ECUT+";
  }
  return "unknown";
}

std::vector<uint64_t> PtScanCount(
    const std::vector<Itemset>& itemsets,
    const std::vector<std::shared_ptr<const TransactionBlock>>& blocks,
    CountingStats* stats) {
  PrefixTree tree;
  std::vector<size_t> ids;
  ids.reserve(itemsets.size());
  for (const Itemset& itemset : itemsets) ids.push_back(tree.Insert(itemset));

  uint64_t touched = 0;
  for (const auto& block : blocks) {
    for (const Transaction& t : block->transactions()) {
      tree.CountTransaction(t);
      touched += t.size();
    }
  }
  if (stats != nullptr) {
    stats->slots_fetched += touched;
  }
  std::vector<uint64_t> counts;
  counts.reserve(itemsets.size());
  for (size_t id : ids) counts.push_back(tree.CountOf(id));
  return counts;
}

namespace {

// Chooses the TID-lists used to count `itemset` in `block` under the ECUT+
// covering rule: greedily pick the smallest materialized pair list whose
// two items are still uncovered; cover the remainder with item lists.
void ChooseLists(const BlockTidLists& block, const Itemset& itemset,
                 bool use_pair_lists, std::vector<const TidList*>* lists) {
  lists->clear();
  const size_t k = itemset.size();
  if (!use_pair_lists || k < 2 || block.num_pair_lists() == 0) {
    for (Item item : itemset) lists->push_back(&block.ItemList(item));
    return;
  }
  std::vector<bool> covered(k, false);
  for (;;) {
    const TidList* best = nullptr;
    size_t best_i = 0;
    size_t best_j = 0;
    for (size_t i = 0; i < k; ++i) {
      if (covered[i]) continue;
      for (size_t j = i + 1; j < k; ++j) {
        if (covered[j]) continue;
        const TidList* pair = block.PairList(itemset[i], itemset[j]);
        if (pair != nullptr && (best == nullptr || pair->size() < best->size())) {
          best = pair;
          best_i = i;
          best_j = j;
        }
      }
    }
    if (best == nullptr) break;
    lists->push_back(best);
    covered[best_i] = true;
    covered[best_j] = true;
  }
  for (size_t i = 0; i < k; ++i) {
    if (!covered[i]) lists->push_back(&block.ItemList(itemset[i]));
  }
}

}  // namespace

std::vector<uint64_t> EcutCount(const std::vector<Itemset>& itemsets,
                                const TidListStore& store,
                                bool use_pair_lists, CountingStats* stats) {
  std::vector<uint64_t> counts(itemsets.size(), 0);
  std::vector<const TidList*> lists;
  for (size_t s = 0; s < itemsets.size(); ++s) {
    const Itemset& itemset = itemsets[s];
    DEMON_CHECK(!itemset.empty());
    uint64_t count = 0;
    // Additivity property: the support over the selected data is the sum of
    // per-block supports, so each block is processed independently.
    for (const auto& block : store.blocks()) {
      ChooseLists(*block, itemset, use_pair_lists, &lists);
      if (stats != nullptr) {
        stats->lists_opened += lists.size();
        for (const TidList* list : lists) stats->slots_fetched += list->size();
      }
      count += IntersectionSize(lists);
    }
    counts[s] = count;
  }
  return counts;
}

std::vector<uint64_t> CountSupports(
    CountingStrategy strategy, const std::vector<Itemset>& itemsets,
    const std::vector<std::shared_ptr<const TransactionBlock>>& blocks,
    const TidListStore& store, CountingStats* stats) {
  switch (strategy) {
    case CountingStrategy::kPtScan:
      return PtScanCount(itemsets, blocks, stats);
    case CountingStrategy::kEcut:
      return EcutCount(itemsets, store, /*use_pair_lists=*/false, stats);
    case CountingStrategy::kEcutPlus:
      return EcutCount(itemsets, store, /*use_pair_lists=*/true, stats);
  }
  return {};
}

}  // namespace demon
