#ifndef DEMON_ITEMSETS_FUP_H_
#define DEMON_ITEMSETS_FUP_H_

#include <memory>
#include <vector>

#include "data/block.h"
#include "itemsets/itemset_model.h"

namespace demon {

/// \brief FUP [CHNW96]: the first incremental frequent-itemset
/// maintenance algorithm, and the baseline BORDERS improves on (paper
/// §6: "The BORDERS algorithm improves the FUP algorithm by reducing the
/// number of scans of the old database").
///
/// FUP keeps only the frequent itemsets (with counts) — no negative
/// border. When a block db arrives it iterates level-wise:
///  * old frequent k-itemsets are re-validated by counting them in db
///    only (their old counts are known);
///  * new candidates (generated from the updated L_{k-1}, minus old
///    frequent k-itemsets) are first counted in db; by FUP's lemma, a
///    newly frequent itemset must be frequent *within db*, so candidates
///    infrequent in db are pruned — the rest need a scan of the ENTIRE
///    old database to complete their counts.
/// The per-level old-database scans are FUP's cost; BORDERS replaces them
/// with border bookkeeping and (in DEMON) TID-list reads.
class FupMaintainer {
 public:
  struct Stats {
    /// Levels that needed a scan of the old database.
    size_t old_db_scans = 0;
    /// Candidates counted against the old database.
    size_t candidates_counted = 0;
    double seconds = 0.0;
  };

  FupMaintainer(double minsup, size_t num_items);

  /// Adds the next block and updates the frequent itemsets.
  void AddBlock(std::shared_ptr<const TransactionBlock> block);

  /// The maintained frequent itemsets (the model has an empty border:
  /// FUP does not track one).
  const ItemsetModel& model() const { return model_; }
  const Stats& last_stats() const { return last_stats_; }
  size_t NumBlocks() const { return blocks_.size(); }

 private:
  double minsup_;
  size_t num_items_;
  ItemsetModel model_;
  std::vector<std::shared_ptr<const TransactionBlock>> blocks_;
  Stats last_stats_;
};

}  // namespace demon

#endif  // DEMON_ITEMSETS_FUP_H_
