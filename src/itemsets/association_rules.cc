#include "itemsets/association_rules.h"

#include <algorithm>

#include "common/check.h"
#include "itemsets/candidate_generation.h"

namespace demon {

std::string AssociationRule::ToString() const {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), " (sup %.3f, conf %.3f, lift %.2f)",
                support, confidence, lift);
  return demon::ToString(antecedent) + " => " + demon::ToString(consequent) +
         buffer;
}

namespace {

Itemset Difference(const Itemset& from, const Itemset& remove) {
  Itemset out;
  out.reserve(from.size() - remove.size());
  std::set_difference(from.begin(), from.end(), remove.begin(), remove.end(),
                      std::back_inserter(out));
  return out;
}

void SortRules(std::vector<AssociationRule>* rules) {
  std::sort(rules->begin(), rules->end(),
            [](const AssociationRule& a, const AssociationRule& b) {
              if (a.confidence != b.confidence) {
                return a.confidence > b.confidence;
              }
              if (a.support != b.support) return a.support > b.support;
              if (a.antecedent != b.antecedent) {
                return ItemsetLess()(a.antecedent, b.antecedent);
              }
              return ItemsetLess()(a.consequent, b.consequent);
            });
}

}  // namespace

std::vector<AssociationRule> DeriveRulesFrom(const ItemsetModel& model,
                                             const Itemset& itemset,
                                             double min_confidence) {
  DEMON_CHECK(min_confidence > 0.0 && min_confidence <= 1.0);
  std::vector<AssociationRule> rules;
  if (itemset.size() < 2 || !model.IsFrequent(itemset)) return rules;
  const double itemset_support = model.SupportOf(itemset);

  // Grow consequents level-wise (ap-genrules): confidence of
  // (itemset \ Y) => Y is sup(itemset) / sup(itemset \ Y); enlarging Y
  // shrinks the antecedent, which can only raise sup(itemset \ Y) and
  // hence lower confidence — so failed consequents prune all their
  // supersets.
  std::vector<Itemset> consequents;
  for (Item item : itemset) consequents.push_back({item});

  while (!consequents.empty()) {
    std::vector<Itemset> surviving;
    for (const Itemset& consequent : consequents) {
      if (consequent.size() >= itemset.size()) continue;
      const Itemset antecedent = Difference(itemset, consequent);
      const double antecedent_support = model.SupportOf(antecedent);
      if (antecedent_support <= 0.0) continue;
      const double confidence = itemset_support / antecedent_support;
      if (confidence < min_confidence) continue;
      const double consequent_support = model.SupportOf(consequent);
      AssociationRule rule;
      rule.antecedent = antecedent;
      rule.consequent = consequent;
      rule.support = itemset_support;
      rule.confidence = confidence;
      rule.lift = consequent_support > 0.0 ? confidence / consequent_support
                                           : 0.0;
      rules.push_back(std::move(rule));
      surviving.push_back(consequent);
    }
    // Next level: join surviving consequents (all subsets must survive).
    ItemsetSet survivors(surviving.begin(), surviving.end());
    consequents = GenerateCandidates(
        std::move(surviving),
        [&survivors](const Itemset& s) { return survivors.count(s) > 0; });
  }
  SortRules(&rules);
  return rules;
}

std::vector<AssociationRule> DeriveRules(const ItemsetModel& model,
                                         double min_confidence) {
  std::vector<AssociationRule> rules;
  for (const auto& [itemset, entry] : model.entries()) {
    if (!entry.frequent || itemset.size() < 2) continue;
    auto from_itemset = DeriveRulesFrom(model, itemset, min_confidence);
    rules.insert(rules.end(),
                 std::make_move_iterator(from_itemset.begin()),
                 std::make_move_iterator(from_itemset.end()));
  }
  SortRules(&rules);
  return rules;
}

}  // namespace demon
