#ifndef DEMON_ITEMSETS_ASSOCIATION_RULES_H_
#define DEMON_ITEMSETS_ASSOCIATION_RULES_H_

#include <string>
#include <vector>

#include "itemsets/itemset_model.h"

namespace demon {

/// \brief An association rule X => Y with the standard quality measures
/// [AMS+96]. X and Y are disjoint, non-empty, and X ∪ Y is frequent.
struct AssociationRule {
  Itemset antecedent;
  Itemset consequent;
  /// Fractional support of X ∪ Y.
  double support = 0.0;
  /// Confidence sup(X ∪ Y) / sup(X).
  double confidence = 0.0;
  /// Lift confidence / sup(Y); > 1 means positive correlation.
  double lift = 0.0;

  std::string ToString() const;
};

/// \brief Derives all association rules with at least `min_confidence`
/// from a maintained frequent-itemset model.
///
/// This is the layer the Demons'R'Us analyst of §2.2 actually consumes:
/// DEMON maintains L(D, κ) incrementally, and rules are (re)derived from
/// the in-memory model on demand — no data access at all. Uses the
/// standard anti-monotonicity of confidence in the consequent (growing
/// the consequent of a rule over the same itemset can only lower
/// confidence) to prune the consequent lattice [AMS+96].
///
/// Rules are returned sorted by descending confidence, then descending
/// support, then antecedent order.
std::vector<AssociationRule> DeriveRules(const ItemsetModel& model,
                                         double min_confidence);

/// \brief Rules derived from the single frequent itemset `itemset`
/// (must be frequent in `model`); helper for targeted queries.
std::vector<AssociationRule> DeriveRulesFrom(const ItemsetModel& model,
                                             const Itemset& itemset,
                                             double min_confidence);

}  // namespace demon

#endif  // DEMON_ITEMSETS_ASSOCIATION_RULES_H_
