#ifndef DEMON_ITEMSETS_ITEMSET_MODEL_H_
#define DEMON_ITEMSETS_ITEMSET_MODEL_H_

#include <cstdint>
#include <vector>

#include "common/audit.h"
#include "common/check.h"
#include "itemsets/itemset.h"

namespace demon {

/// \brief The frequent-itemset model maintained by DEMON: the set of
/// frequent itemsets L(D, κ) *and* the negative border NB-(D, κ), each with
/// absolute support counts, plus the total transaction count (paper §3).
///
/// Storing the border with counts is what makes BORDERS-style detection
/// possible: when a block arrives, only the supports of L ∪ NB- need to be
/// refreshed to decide whether the model changed.
class ItemsetModel {
 public:
  struct Entry {
    uint64_t count = 0;
    bool frequent = false;
  };

  ItemsetModel() = default;

  /// `minsup` is the fractional minimum support κ in (0, 1); `num_items`
  /// the size of the item universe (needed so the 1-itemset layer of the
  /// border is complete).
  ItemsetModel(double minsup, size_t num_items)
      : minsup_(minsup), num_items_(num_items) {
    DEMON_CHECK(minsup_ > 0.0 && minsup_ < 1.0);
  }

  double minsup() const { return minsup_; }
  /// Changes the threshold (the κ-change scenario of §3.1.1); the caller
  /// (BordersMaintainer::ChangeMinSupport) re-establishes the invariants.
  void set_minsup(double minsup) {
    DEMON_CHECK(minsup > 0.0 && minsup < 1.0);
    minsup_ = minsup;
  }
  size_t num_items() const { return num_items_; }

  uint64_t num_transactions() const { return num_transactions_; }
  void set_num_transactions(uint64_t n) { num_transactions_ = n; }
  void AddTransactions(uint64_t n) { num_transactions_ += n; }

  /// The absolute count an itemset needs to be frequent:
  /// ceil(minsup * num_transactions), at least 1.
  uint64_t MinCount() const {
    if (num_transactions_ == 0) return 1;
    const double exact = minsup_ * static_cast<double>(num_transactions_);
    uint64_t min_count = static_cast<uint64_t>(exact);
    if (static_cast<double>(min_count) < exact) ++min_count;
    return min_count == 0 ? 1 : min_count;
  }

  const ItemsetMap<Entry>& entries() const { return entries_; }
  ItemsetMap<Entry>* mutable_entries() { return &entries_; }

  /// True if the itemset is tracked and currently frequent.
  bool IsFrequent(const Itemset& itemset) const {
    const auto it = entries_.find(itemset);
    return it != entries_.end() && it->second.frequent;
  }

  /// True if the itemset is tracked (frequent or border).
  bool Contains(const Itemset& itemset) const {
    return entries_.find(itemset) != entries_.end();
  }

  /// Absolute count of a tracked itemset; 0 for untracked ones (untracked
  /// itemsets are guaranteed infrequent but their count is unknown — this
  /// accessor is for tracked sets; see Entry lookup for distinction).
  uint64_t CountOf(const Itemset& itemset) const {
    const auto it = entries_.find(itemset);
    return it == entries_.end() ? 0 : it->second.count;
  }

  /// Fractional support of a tracked itemset.
  double SupportOf(const Itemset& itemset) const {
    if (num_transactions_ == 0) return 0.0;
    return static_cast<double>(CountOf(itemset)) /
           static_cast<double>(num_transactions_);
  }

  /// All frequent itemsets (unordered).
  std::vector<Itemset> FrequentItemsets() const {
    std::vector<Itemset> out;
    for (const auto& [itemset, entry] : entries_) {
      if (entry.frequent) out.push_back(itemset);
    }
    return out;
  }

  /// All negative-border itemsets (unordered).
  std::vector<Itemset> NegativeBorder() const {
    std::vector<Itemset> out;
    for (const auto& [itemset, entry] : entries_) {
      if (!entry.frequent) out.push_back(itemset);
    }
    return out;
  }

  size_t NumFrequent() const {
    size_t n = 0;
    for (const auto& [itemset, entry] : entries_) n += entry.frequent ? 1 : 0;
    return n;
  }

  size_t NumBorder() const { return entries_.size() - NumFrequent(); }

  /// Frequent 2-itemsets as item pairs sorted by decreasing count — the
  /// materialization priority order of the ECUT+ heuristic (paper §3.1.1).
  std::vector<std::pair<Item, Item>> Frequent2ItemsetsBySupport() const;

  /// Deep audit of the BORDERS model invariants (§3.1.1): keys sorted and
  /// in-universe, counts bounded by the transaction total, frequent flags
  /// consistent with MinCount(), the 1-itemset layer complete (on non-empty
  /// models), downward closure (every (k-1)-subset of a frequent itemset
  /// tracked and frequent), the negative-border property (every tracked
  /// infrequent itemset has all (k-1)-subsets frequent), and support
  /// monotonicity along subset edges. Appends violations to `audit`.
  void AuditInto(audit::AuditResult* audit) const;

 private:
  double minsup_ = 0.01;
  size_t num_items_ = 0;
  uint64_t num_transactions_ = 0;
  ItemsetMap<Entry> entries_;
};

}  // namespace demon

#endif  // DEMON_ITEMSETS_ITEMSET_MODEL_H_
