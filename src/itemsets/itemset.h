#ifndef DEMON_ITEMSETS_ITEMSET_H_
#define DEMON_ITEMSETS_ITEMSET_H_

#include <algorithm>
#include <cstddef>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "data/types.h"

namespace demon {

/// An itemset: a sorted, duplicate-free vector of items. All functions in
/// this module require the sorted representation.
using Itemset = std::vector<Item>;

/// \brief FNV-1a style hash over the items, usable as the hash functor of
/// unordered containers keyed by Itemset.
struct ItemsetHash {
  size_t operator()(const Itemset& itemset) const {
    uint64_t h = 1469598103934665603ULL;
    for (Item item : itemset) {
      h ^= item;
      h *= 1099511628211ULL;
    }
    return static_cast<size_t>(h);
  }
};

using ItemsetSet = std::unordered_set<Itemset, ItemsetHash>;

template <typename V>
using ItemsetMap = std::unordered_map<Itemset, V, ItemsetHash>;

/// \brief True if sorted itemset `a` is a subset of sorted itemset `b`.
inline bool IsSubset(const Itemset& a, const Itemset& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

/// \brief Returns the union of two sorted itemsets (sorted).
inline Itemset Union(const Itemset& a, const Itemset& b) {
  Itemset out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

/// \brief Returns `itemset` with the element at `index` removed — the
/// (k-1)-subset used for Apriori pruning.
inline Itemset WithoutIndex(const Itemset& itemset, size_t index) {
  Itemset out;
  out.reserve(itemset.size() - 1);
  for (size_t i = 0; i < itemset.size(); ++i) {
    if (i != index) out.push_back(itemset[i]);
  }
  return out;
}

/// \brief Renders "{1, 5, 9}" for logs and experiment output.
inline std::string ToString(const Itemset& itemset) {
  std::string out = "{";
  for (size_t i = 0; i < itemset.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(itemset[i]);
  }
  out += "}";
  return out;
}

/// \brief Lexicographic comparison used to canonically order itemset lists
/// in tests and candidate generation (first by size is NOT implied).
struct ItemsetLess {
  bool operator()(const Itemset& a, const Itemset& b) const {
    return std::lexicographical_compare(a.begin(), a.end(), b.begin(),
                                        b.end());
  }
};

}  // namespace demon

#endif  // DEMON_ITEMSETS_ITEMSET_H_
