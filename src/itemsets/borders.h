#ifndef DEMON_ITEMSETS_BORDERS_H_
#define DEMON_ITEMSETS_BORDERS_H_

#include <memory>
#include <string>
#include <vector>

#include "data/block.h"
#include "itemsets/counting_context.h"
#include "itemsets/itemset_model.h"
#include "itemsets/support_counting.h"
#include "persistence/serializer.h"
#include "tidlist/tidlist_store.h"

namespace demon {

/// Configuration of a BordersMaintainer.
struct BordersOptions {
  /// Minimum support κ ∈ (0, 1).
  double minsup = 0.01;
  /// Item-universe size.
  size_t num_items = 1000;
  /// How the update phase counts new candidates (paper Figs 2, 4-7).
  CountingStrategy strategy = CountingStrategy::kPtScan;
  /// ECUT+ only: per-block space budget for materialized 2-itemset lists,
  /// as a fraction of the block's item-list slots. The paper observed the
  /// full materialization needs < 25% extra space at κ >= 0.008 (Fig 3).
  double pair_budget_fraction = 1.0;
  /// Memory budget for resident encoded TID-list bytes (out-of-core
  /// paging below it; see TidListStoreOptions). 0 defers to the
  /// DEMON_TIDLIST_BUDGET_BYTES environment variable, and unbounded when
  /// that is also unset — the all-in-RAM default.
  size_t tidlist_budget_bytes = 0;
  /// Spill directory for evicted TID-list extents. Empty defers to
  /// DEMON_TIDLIST_SPILL_DIR, then to a fresh temp directory.
  std::string tidlist_spill_dir;
};

/// \brief Incremental maintainer of the frequent-itemset model under
/// systematic block evolution — the BORDERS algorithm of [FAAM97, TBAR97]
/// with the paper's ECUT / ECUT+ counting in the update phase (§3.1.1).
///
/// Usage: construct, then call AddBlock for every block *selected by the
/// BSS* (unselected blocks are simply not passed in; the model carries
/// over, §3.1.1). After each call, `model()` equals the model Apriori
/// would compute from scratch over all added blocks — the invariant the
/// test suite checks.
///
/// The maintainer also supports deletion of the oldest block
/// (RemoveOldestBlock), which is what the direct most-recent-window
/// maintainer AuM of §3.2.4 needs; GEMM does not use deletions.
///
/// Copying a maintainer deep-copies the model but shares the immutable
/// block data and TID-lists — the cheap clone GEMM relies on to keep w
/// models alive.
class BordersMaintainer {
 public:
  /// Timing/volume breakdown of the last AddBlock/RemoveOldestBlock call,
  /// matching the phases reported in Figures 4-7.
  struct UpdateStats {
    double detection_seconds = 0.0;
    double update_seconds = 0.0;
    /// New candidate itemsets whose support was counted over the history.
    size_t new_candidates = 0;
    /// Iterations of the update loop (0 if detection found no change).
    size_t update_iterations = 0;
    /// Counting-volume metrics of the update phase.
    CountingStats counting;
  };

  explicit BordersMaintainer(const BordersOptions& options);

  /// Adds a selected block and brings the model up to date.
  void AddBlock(std::shared_ptr<const TransactionBlock> block);

  /// Removes the oldest previously added block and brings the model up to
  /// date (supports AuM-style sliding windows). Requires NumBlocks() >= 1.
  void RemoveOldestBlock() { RemoveBlockAt(0); }

  /// Removes the block at position `index` (0 = oldest) among the blocks
  /// added so far. Arbitrary window-relative BSSs make AuM delete blocks
  /// from the middle of its selected set (§3.2.4).
  void RemoveBlockAt(size_t index);

  /// Block ids currently contributing to the model, in addition order.
  std::vector<BlockId> BlockIds() const {
    std::vector<BlockId> ids;
    ids.reserve(blocks_.size());
    for (const auto& block : blocks_) ids.push_back(block->info().id);
    return ids;
  }

  /// Changes the minimum support threshold (paper §3.1.1: trivial when
  /// raising; re-runs the update machinery when lowering).
  void ChangeMinSupport(double minsup);

  /// Binds the counting kernel to `pool` (not owned; null = sequential):
  /// detection scans, the base-case Apriori and update-phase candidate
  /// counting then shard over the pool with bit-identical results. The
  /// MaintenanceEngine shares its monitor pool this way.
  void set_counting_pool(ThreadPool* pool) { counting_.set_pool(pool); }

  /// Binds `registry` (not owned; nullable) for phase spans
  /// ("tidlist-build" / "borders-detect" / "borders-update"), the
  /// `borders/{detection,update}_seconds` histograms, and — forwarded to
  /// the counting kernel — per-shard counting spans and counters. The
  /// UpdateStats timings remain available in every build; the histograms
  /// and spans are DEMON_TELEMETRY-gated.
  void set_telemetry(telemetry::TelemetryRegistry* registry) {
    counting_.set_telemetry(registry);
    tidlists_.set_telemetry(registry);
    if constexpr (telemetry::kEnabled) {
      telemetry_ = registry;
      detection_hist_ = registry == nullptr
                            ? nullptr
                            : registry->histogram("borders/detection_seconds");
      update_hist_ = registry == nullptr
                         ? nullptr
                         : registry->histogram("borders/update_seconds");
    }
  }

  /// Deep audit at a block boundary: the model's BORDERS invariants
  /// (closure, negative border, flag/count consistency), the TID-list
  /// store's structural invariants, and the cross-structure bookkeeping
  /// (one TID-list block per transaction block of matching size; the
  /// model's transaction total equal to the blocks' sum). Appends
  /// violations to `audit`.
  void AuditInto(audit::AuditResult* audit) const;

  /// The decisive (and expensive) audit: re-mines the selected blocks from
  /// scratch with Apriori and requires the incrementally maintained model
  /// to match entry-for-entry — the exact-equivalence guarantee of §3.1.1.
  /// Meant for DEMON_AUDIT builds at block boundaries, where every test
  /// stream doubles as an end-to-end correctness fuzz.
  void AuditRescratchInto(audit::AuditResult* audit) const;

  /// Serializes the maintainer's dynamic state: the model, the selected
  /// block ids, and — for ECUT/ECUT+ — each block's materialized pair set,
  /// so restore rebuilds byte-identical TID-lists. Blocks themselves are
  /// stored once by the checkpoint container, not here.
  void SaveState(persistence::Writer& w) const;

  /// Restores state saved by SaveState into a freshly constructed
  /// maintainer with the same options. Selected blocks are re-acquired
  /// through the Reader's transaction BlockSource and their TID-lists
  /// rebuilt with the recorded pair sets.
  [[nodiscard]] Status LoadState(persistence::Reader& r);

  const ItemsetModel& model() const { return model_; }
  const BordersOptions& options() const { return options_; }
  const UpdateStats& last_stats() const { return last_stats_; }
  size_t NumBlocks() const { return blocks_.size(); }
  const TidListStore& tidlist_store() const { return tidlists_; }

 private:
  /// Counts all tracked itemsets over `block` and folds the counts into the
  /// model (sign = +1 for addition, -1 for deletion). Returns block size.
  void FoldBlockCounts(const TransactionBlock& block, int sign);

  /// Re-derives frequent flags, handles demotions/promotions, runs the
  /// candidate-expansion update loop, and prunes the border. The core of
  /// the detection/update machinery shared by add, delete and κ-change.
  void Refresh(const std::vector<Itemset>& promotion_seeds);

  /// Generates the not-yet-tracked candidates obtainable by joining the
  /// given newly frequent seeds with the frequent sets of the same size.
  std::vector<Itemset> SeededCandidates(const std::vector<Itemset>& seeds);

  /// Drops border entries that have an infrequent proper subset (restores
  /// the NB- invariant after demotions).
  void PruneBorder();

  bool IsFrequentEntry(const Itemset& itemset) const {
    const auto it = model_.entries().find(itemset);
    return it != model_.entries().end() && it->second.frequent;
  }

  BordersOptions options_;
  ItemsetModel model_;
  std::vector<std::shared_ptr<const TransactionBlock>> blocks_;
  TidListStore tidlists_;
  UpdateStats last_stats_;
  /// Reusable (optionally parallel) support-counting kernel. Copies of a
  /// maintainer share the pool binding but not the scratch buffers.
  CountingContext counting_;
  /// All null in DEMON_TELEMETRY=OFF builds (see set_telemetry).
  telemetry::TelemetryRegistry* telemetry_ = nullptr;
  telemetry::Histogram* detection_hist_ = nullptr;
  telemetry::Histogram* update_hist_ = nullptr;
};

}  // namespace demon

#endif  // DEMON_ITEMSETS_BORDERS_H_
