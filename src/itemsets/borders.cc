#include "itemsets/borders.h"

#include <algorithm>
#include <string>

#include "common/check.h"
#include "itemsets/apriori.h"
#include "itemsets/model_io.h"
#include "persistence/block_codec.h"

namespace demon {

namespace {

/// Store options for a maintainer: the environment (the CI soak hook) is
/// the baseline, explicit BordersOptions fields override it.
TidListStoreOptions StoreOptionsFor(const BordersOptions& options) {
  TidListStoreOptions store = TidListStoreOptions::FromEnv();
  if (options.tidlist_budget_bytes != 0) {
    store.memory_budget_bytes = options.tidlist_budget_bytes;
  }
  if (!options.tidlist_spill_dir.empty()) {
    store.spill_dir = options.tidlist_spill_dir;
  }
  return store;
}

}  // namespace

BordersMaintainer::BordersMaintainer(const BordersOptions& options)
    : options_(options),
      model_(options.minsup, options.num_items),
      tidlists_(StoreOptionsFor(options)) {
  DEMON_CHECK(options_.minsup > 0.0 && options_.minsup < 1.0);
  DEMON_CHECK(options_.num_items > 0);
}

void BordersMaintainer::FoldBlockCounts(const TransactionBlock& block,
                                        int sign) {
  if (model_.entries().empty()) return;
  // Entry pointers are stable across unordered_map lookups (no inserts
  // happen while counting), so bind them once.
  std::vector<Itemset> itemsets;
  std::vector<ItemsetModel::Entry*> entries;
  itemsets.reserve(model_.entries().size());
  entries.reserve(model_.entries().size());
  for (auto& [itemset, entry] : *model_.mutable_entries()) {
    itemsets.push_back(itemset);
    entries.push_back(&entry);
  }
  // Non-owning alias: the counting kernel only reads the block.
  auto alias = std::shared_ptr<const TransactionBlock>(
      std::shared_ptr<const TransactionBlock>(), &block);
  const std::vector<uint64_t> deltas = counting_.PtScan(itemsets, {alias});
  for (size_t i = 0; i < entries.size(); ++i) {
    const uint64_t delta = deltas[i];
    if (sign > 0) {
      entries[i]->count += delta;
    } else {
      DEMON_CHECK_MSG(entries[i]->count >= delta,
                      "deletion underflows a count");
      entries[i]->count -= delta;
    }
  }
}

void BordersMaintainer::AddBlock(
    std::shared_ptr<const TransactionBlock> block) {
  DEMON_CHECK(block != nullptr);
  last_stats_ = UpdateStats{};

  const bool needs_tidlists = options_.strategy != CountingStrategy::kPtScan;
  if (needs_tidlists) {
    // Materialize the block's TID-lists; for ECUT+ also the frequent
    // 2-itemsets of the *current* model, highest support first, within the
    // space budget (paper §3.1.1 heuristic). This is part of storing the
    // block (the lists replace the transactional format), not of model
    // maintenance, so it is not counted in detection/update time.
    DEMON_TRACE_SPAN(span, telemetry_, "tidlist-build", "borders");
    PairMaterializationSpec spec;
    std::shared_ptr<const BlockTidLists> lists;
    if (options_.strategy == CountingStrategy::kEcutPlus &&
        !model_.entries().empty()) {
      spec.pairs = model_.Frequent2ItemsetsBySupport();
      spec.budget_slots = static_cast<size_t>(
          options_.pair_budget_fraction *
          static_cast<double>(block->TotalItemOccurrences()));
      lists = BlockTidLists::Build(*block, options_.num_items, &spec);
    } else {
      lists = BlockTidLists::Build(*block, options_.num_items, nullptr);
    }
    tidlists_.Append(std::move(lists));
  }

  {
    DEMON_TRACE_SPAN(span, telemetry_, "borders-detect", "borders");
    telemetry::ScopedTimer timer(detection_hist_);
    if (blocks_.empty() && model_.entries().empty()) {
      // First selected block: build the model from scratch (base case).
      blocks_.push_back(std::move(block));
      model_ =
          Apriori(blocks_, options_.minsup, options_.num_items, &counting_);
      last_stats_.detection_seconds = timer.Stop();
      return;
    }

    // Detection phase: one scan of the new block refreshes the supports of
    // L ∪ NB- and flags any itemset that crossed the threshold.
    FoldBlockCounts(*block, +1);
    model_.AddTransactions(block->size());
    blocks_.push_back(std::move(block));
    last_stats_.detection_seconds = timer.Stop();
  }

  DEMON_TRACE_SPAN(span, telemetry_, "borders-update", "borders");
  telemetry::ScopedTimer timer(update_hist_);
  Refresh({});
  last_stats_.update_seconds = timer.Stop();
}

void BordersMaintainer::RemoveBlockAt(size_t index) {
  DEMON_CHECK(index < blocks_.size());
  last_stats_ = UpdateStats{};

  {
    DEMON_TRACE_SPAN(span, telemetry_, "borders-detect", "borders");
    telemetry::ScopedTimer timer(detection_hist_);
    const auto victim = blocks_[index];
    FoldBlockCounts(*victim, -1);
    DEMON_CHECK(model_.num_transactions() >= victim->size());
    model_.set_num_transactions(model_.num_transactions() - victim->size());
    blocks_.erase(blocks_.begin() + index);
    if (options_.strategy != CountingStrategy::kPtScan) {
      tidlists_.DropAt(index);
    }
    last_stats_.detection_seconds = timer.Stop();
  }

  DEMON_TRACE_SPAN(span, telemetry_, "borders-update", "borders");
  telemetry::ScopedTimer timer(update_hist_);
  Refresh({});
  last_stats_.update_seconds = timer.Stop();
}

void BordersMaintainer::ChangeMinSupport(double minsup) {
  DEMON_CHECK(minsup > 0.0 && minsup < 1.0);
  options_.minsup = minsup;
  model_.set_minsup(minsup);
  last_stats_ = UpdateStats{};
  DEMON_TRACE_SPAN(span, telemetry_, "borders-update", "borders");
  telemetry::ScopedTimer timer(update_hist_);
  Refresh({});
  last_stats_.update_seconds = timer.Stop();
}

void BordersMaintainer::Refresh(const std::vector<Itemset>& promotion_seeds) {
  const uint64_t min_count = model_.MinCount();
  auto& entries = *model_.mutable_entries();

  // Flip frequency flags; newly frequent itemsets seed candidate growth.
  std::vector<Itemset> seeds = promotion_seeds;
  bool any_demotion = false;
  for (auto& [itemset, entry] : entries) {
    const bool should_be_frequent = entry.count >= min_count;
    if (should_be_frequent == entry.frequent) continue;
    entry.frequent = should_be_frequent;
    if (should_be_frequent) {
      seeds.push_back(itemset);
    } else {
      any_demotion = true;
    }
  }
  // Demotions invalidate border entries that now have an infrequent subset
  // (footnote 6: delete supersets of demoted itemsets from NB-).
  if (any_demotion) PruneBorder();

  // Update phase: grow new candidates from the promoted itemsets, count
  // them over the full selected history with the configured strategy, and
  // iterate while new frequent itemsets keep appearing (§3.1.1).
  while (!seeds.empty()) {
    ++last_stats_.update_iterations;
    std::vector<Itemset> candidates = SeededCandidates(seeds);
    seeds.clear();
    if (candidates.empty()) break;
    last_stats_.new_candidates += candidates.size();
    const std::vector<uint64_t> counts =
        counting_.Count(options_.strategy, candidates, blocks_, tidlists_,
                        &last_stats_.counting);
    for (size_t i = 0; i < candidates.size(); ++i) {
      const bool frequent = counts[i] >= min_count;
      entries.emplace(candidates[i],
                      ItemsetModel::Entry{counts[i], frequent});
      if (frequent) seeds.push_back(std::move(candidates[i]));
    }
  }
}

std::vector<Itemset> BordersMaintainer::SeededCandidates(
    const std::vector<Itemset>& seeds) {
  // A (k+1)-itemset Y needs counting now iff it is untracked and all of its
  // k-subsets are frequent; untracked-but-eligible means at least one of
  // those subsets was *just* promoted (otherwise Y would already have been
  // generated). So every new candidate is some seed extended by one item,
  // with all other k-subsets frequent — a seeded version of the prefix
  // join of [AMS+96] that the paper's update phase uses.
  ItemsetSet produced;
  std::vector<Itemset> result;
  std::vector<Item> frequent_items;
  for (const auto& [itemset, entry] : model_.entries()) {
    if (entry.frequent && itemset.size() == 1) {
      frequent_items.push_back(itemset[0]);
    }
  }
  std::sort(frequent_items.begin(), frequent_items.end());

  for (const Itemset& seed : seeds) {
    for (Item extension : frequent_items) {
      if (std::binary_search(seed.begin(), seed.end(), extension)) continue;
      Itemset candidate = seed;
      candidate.insert(
          std::lower_bound(candidate.begin(), candidate.end(), extension),
          extension);
      if (model_.Contains(candidate) || produced.count(candidate) > 0) {
        continue;
      }
      // Prune: every |seed|-subset must be frequent (the seed itself is,
      // by construction).
      bool keep = true;
      for (size_t drop = 0; drop < candidate.size() && keep; ++drop) {
        Itemset subset = WithoutIndex(candidate, drop);
        if (subset == seed) continue;
        keep = IsFrequentEntry(subset);
      }
      if (!keep) continue;
      produced.insert(candidate);
      result.push_back(std::move(candidate));
    }
  }
  return result;
}

void BordersMaintainer::AuditInto(audit::AuditResult* audit) const {
  model_.AuditInto(audit);

  uint64_t total_transactions = 0;
  for (const auto& block : blocks_) total_transactions += block->size();
  AUDIT_CHECK(audit, "borders", "borders/transaction-total",
              total_transactions == model_.num_transactions(),
              audit::Msg() << "model holds " << model_.num_transactions()
                           << " transactions but the " << blocks_.size()
                           << " selected blocks sum to " << total_transactions,
              "");

  if (options_.strategy == CountingStrategy::kPtScan) return;
  tidlists_.AuditInto(audit);
  AUDIT_CHECK(audit, "borders", "borders/tidlist-block-count",
              tidlists_.NumBlocks() == blocks_.size(),
              audit::Msg() << "store has " << tidlists_.NumBlocks()
                           << " TID-list blocks for " << blocks_.size()
                           << " transaction blocks",
              "");
  const size_t paired = std::min(tidlists_.NumBlocks(), blocks_.size());
  for (size_t i = 0; i < paired; ++i) {
    AUDIT_CHECK(audit, "borders", "borders/tidlist-block-size",
                tidlists_.block(i).num_transactions() == blocks_[i]->size(),
                audit::Msg() << "TID-list block " << i << " covers "
                             << tidlists_.block(i).num_transactions()
                             << " transactions, block holds "
                             << blocks_[i]->size(),
                "");
  }
}

void BordersMaintainer::AuditRescratchInto(audit::AuditResult* audit) const {
  if (blocks_.empty()) return;
  const ItemsetModel scratch =
      Apriori(blocks_, options_.minsup, options_.num_items);

  size_t mismatched = 0;
  std::string example;
  for (const auto& [itemset, entry] : scratch.entries()) {
    const auto it = model_.entries().find(itemset);
    const bool matches = it != model_.entries().end() &&
                         it->second.count == entry.count &&
                         it->second.frequent == entry.frequent;
    if (matches) continue;
    ++mismatched;
    if (example.empty()) {
      example = audit::Msg()
                << demon::ToString(itemset) << ": scratch count="
                << entry.count << " frequent=" << entry.frequent
                << (it == model_.entries().end()
                        ? std::string(", untracked incrementally")
                        : std::string(audit::Msg()
                                      << ", incremental count="
                                      << it->second.count
                                      << " frequent=" << it->second.frequent));
    }
  }
  AUDIT_CHECK(audit, "borders", "borders/rescratch-equivalence",
              mismatched == 0 &&
                  model_.entries().size() == scratch.entries().size() &&
                  model_.num_transactions() == scratch.num_transactions(),
              audit::Msg() << "incremental model diverges from a from-scratch "
                              "Apriori run over the same blocks ("
                           << mismatched << " of " << scratch.entries().size()
                           << " scratch entries mismatched; incremental "
                              "tracks "
                           << model_.entries().size() << ")",
              example);
}

void BordersMaintainer::SaveState(persistence::Writer& w) const {
  SerializeItemsetModel(w, model_);
  w.WriteU64(blocks_.size());
  for (const auto& block : blocks_) w.WriteU32(block->info().id);
  if (options_.strategy == CountingStrategy::kPtScan) return;
  DEMON_CHECK(tidlists_.NumBlocks() == blocks_.size());
  for (size_t b = 0; b < tidlists_.NumBlocks(); ++b) {
    // The pair set a block was materialized with depends on the model at
    // arrival time; record it verbatim (sorted for determinism) so restore
    // rebuilds the exact same lists rather than re-deriving them from the
    // final model.
    auto pairs = tidlists_.block(b).MaterializedPairs();
    std::sort(pairs.begin(), pairs.end());
    w.WriteU64(pairs.size());
    for (const auto& [a, c] : pairs) {
      w.WriteU32(a);
      w.WriteU32(c);
    }
  }
}

Status BordersMaintainer::LoadState(persistence::Reader& r) {
  if (!blocks_.empty() || !model_.entries().empty()) {
    return Status::FailedPrecondition(
        "BORDERS state can only be restored into a fresh maintainer");
  }
  ItemsetModel model;
  DeserializeItemsetModel(r, &model);
  if (!r.ok()) return r.status();
  if (model.minsup() != options_.minsup ||
      model.num_items() != options_.num_items) {
    return Status::InvalidArgument(
        "checkpointed itemset model was mined with different options");
  }

  const persistence::BlockSource* source = r.block_source();
  if (source == nullptr || !source->transactions) {
    return Status::FailedPrecondition(
        "no transaction block source bound to the reader");
  }
  const size_t num_blocks = r.ReadLength(sizeof(uint32_t));
  if (!r.ok()) return r.status();
  blocks_.reserve(num_blocks);
  for (size_t b = 0; b < num_blocks; ++b) {
    const BlockId id = r.ReadU32();
    if (!r.ok()) return r.status();
    DEMON_ASSIGN_OR_RETURN(auto block, source->transactions(id));
    blocks_.push_back(std::move(block));
  }

  if (options_.strategy != CountingStrategy::kPtScan) {
    for (size_t b = 0; b < num_blocks; ++b) {
      const size_t num_pairs = r.ReadLength(2 * sizeof(uint32_t));
      PairMaterializationSpec spec;
      spec.pairs.reserve(num_pairs);
      for (size_t p = 0; p < num_pairs; ++p) {
        const Item a = r.ReadU32();
        const Item c = r.ReadU32();
        spec.pairs.emplace_back(a, c);
      }
      if (!r.ok()) return r.status();
      // The recorded pairs already respect the budget that applied at
      // arrival time, so rebuild them all (unbounded budget).
      tidlists_.Append(BlockTidLists::Build(
          *blocks_[b], options_.num_items,
          spec.pairs.empty() ? nullptr : &spec));
    }
  }
  model_ = std::move(model);
  return r.status();
}

void BordersMaintainer::PruneBorder() {
  auto& entries = *model_.mutable_entries();
  std::vector<Itemset> to_delete;
  for (const auto& [itemset, entry] : entries) {
    if (entry.frequent || itemset.size() <= 1) continue;
    for (size_t drop = 0; drop < itemset.size(); ++drop) {
      if (!IsFrequentEntry(WithoutIndex(itemset, drop))) {
        to_delete.push_back(itemset);
        break;
      }
    }
  }
  for (const Itemset& itemset : to_delete) entries.erase(itemset);
}

}  // namespace demon
