#include "itemsets/itemset_model.h"

#include <algorithm>

namespace demon {

std::vector<std::pair<Item, Item>> ItemsetModel::Frequent2ItemsetsBySupport()
    const {
  std::vector<std::pair<std::pair<Item, Item>, uint64_t>> pairs;
  for (const auto& [itemset, entry] : entries_) {
    if (entry.frequent && itemset.size() == 2) {
      pairs.push_back({{itemset[0], itemset[1]}, entry.count});
    }
  }
  std::sort(pairs.begin(), pairs.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::vector<std::pair<Item, Item>> out;
  out.reserve(pairs.size());
  for (const auto& [pair, count] : pairs) out.push_back(pair);
  return out;
}

}  // namespace demon
