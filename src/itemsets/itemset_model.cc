#include "itemsets/itemset_model.h"

#include <algorithm>

namespace demon {

std::vector<std::pair<Item, Item>> ItemsetModel::Frequent2ItemsetsBySupport()
    const {
  std::vector<std::pair<std::pair<Item, Item>, uint64_t>> pairs;
  for (const auto& [itemset, entry] : entries_) {
    if (entry.frequent && itemset.size() == 2) {
      pairs.push_back({{itemset[0], itemset[1]}, entry.count});
    }
  }
  std::sort(pairs.begin(), pairs.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::vector<std::pair<Item, Item>> out;
  out.reserve(pairs.size());
  for (const auto& [pair, count] : pairs) out.push_back(pair);
  return out;
}

void ItemsetModel::AuditInto(audit::AuditResult* audit) const {
  constexpr char kModule[] = "borders";
  const uint64_t min_count = MinCount();

  size_t tracked_singletons = 0;
  for (const auto& [itemset, entry] : entries_) {
    const std::string name = demon::ToString(itemset);

    AUDIT_CHECK(audit, kModule, "borders/key-well-formed",
                !itemset.empty() &&
                    std::is_sorted(itemset.begin(), itemset.end()) &&
                    std::adjacent_find(itemset.begin(), itemset.end()) ==
                        itemset.end() &&
                    itemset.back() < num_items_,
                audit::Msg() << "tracked itemset " << name
                             << " must be non-empty, strictly sorted, and "
                                "within the universe of "
                             << num_items_ << " items",
                "");
    if (itemset.size() == 1) ++tracked_singletons;

    AUDIT_CHECK(audit, kModule, "borders/count-bounded",
                entry.count <= num_transactions_,
                audit::Msg() << name << " has count " << entry.count
                             << " > total transactions " << num_transactions_,
                "");
    AUDIT_CHECK(audit, kModule, "borders/frequent-flag",
                entry.frequent == (entry.count >= min_count),
                audit::Msg() << name << " has count " << entry.count
                             << " against MinCount() " << min_count
                             << " but frequent=" << entry.frequent,
                "");

    if (itemset.size() < 2) continue;
    // Closure (frequent case) and the negative-border property (infrequent
    // case): either way every (k-1)-subset must be tracked and frequent,
    // with a count no smaller than this entry's (support monotonicity).
    for (size_t drop = 0; drop < itemset.size(); ++drop) {
      const Itemset subset = WithoutIndex(itemset, drop);
      const auto it = entries_.find(subset);
      if (it == entries_.end() || !it->second.frequent) {
        AUDIT_FAIL(audit, kModule,
                   entry.frequent ? "borders/closure"
                                  : "borders/negative-border",
                   audit::Msg()
                       << (entry.frequent ? "frequent itemset "
                                          : "border itemset ")
                       << name << " has subset " << demon::ToString(subset)
                       << (it == entries_.end() ? " untracked"
                                                : " tracked but infrequent"),
                   audit::Msg() << "count=" << entry.count
                                << " min_count=" << min_count);
        continue;
      }
      AUDIT_CHECK(audit, kModule, "borders/support-monotone",
                  it->second.count >= entry.count,
                  audit::Msg() << "subset " << demon::ToString(subset)
                               << " has count " << it->second.count
                               << " < superset " << name << " count "
                               << entry.count,
                  "");
    }
  }

  // A non-empty model must track the full 1-itemset layer — L1 ∪ NB1- is
  // the whole universe, which is what makes border-based detection work.
  AUDIT_CHECK(audit, kModule, "borders/one-layer-complete",
              entries_.empty() || tracked_singletons == num_items_,
              audit::Msg() << "model tracks " << tracked_singletons << " of "
                           << num_items_ << " 1-itemsets",
              "");
}

}  // namespace demon
