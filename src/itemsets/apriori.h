#ifndef DEMON_ITEMSETS_APRIORI_H_
#define DEMON_ITEMSETS_APRIORI_H_

#include <memory>
#include <vector>

#include "data/block.h"
#include "itemsets/itemset_model.h"

namespace demon {

class CountingContext;

/// \brief Apriori [AS94]: mines the frequent itemsets L(D, κ) *and* the
/// negative border NB-(D, κ) with exact counts from the given blocks.
///
/// The negative border falls out of Apriori for free: the candidates of
/// level k are exactly the k-itemsets all of whose (k-1)-subsets are
/// frequent, and the infrequent ones among them are NB- members. Level 1
/// treats every item of the universe as a candidate so the border is
/// complete (infrequent single items are border members too).
///
/// This is the from-scratch model constructor; BordersMaintainer evolves
/// its result incrementally. It also serves as the ground truth the test
/// suite compares incremental maintenance against.
///
/// `context` parallelizes the level-wise counting scans when it carries a
/// thread pool (results are bit-identical either way); null counts
/// sequentially.
ItemsetModel Apriori(
    const std::vector<std::shared_ptr<const TransactionBlock>>& blocks,
    double minsup, size_t num_items, CountingContext* context = nullptr);

/// Convenience overload for a single block.
ItemsetModel AprioriOnBlock(const TransactionBlock& block, double minsup,
                            size_t num_items);

}  // namespace demon

#endif  // DEMON_ITEMSETS_APRIORI_H_
