#include "itemsets/candidate_generation.h"

#include <algorithm>

namespace demon {

std::vector<Itemset> GeneratePairCandidates(
    const std::vector<Item>& frequent_items) {
  std::vector<Item> items = frequent_items;
  std::sort(items.begin(), items.end());
  std::vector<Itemset> candidates;
  candidates.reserve(items.size() * (items.size() - 1) / 2);
  for (size_t i = 0; i < items.size(); ++i) {
    for (size_t j = i + 1; j < items.size(); ++j) {
      candidates.push_back(Itemset{items[i], items[j]});
    }
  }
  return candidates;
}

}  // namespace demon
