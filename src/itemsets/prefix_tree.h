#ifndef DEMON_ITEMSETS_PREFIX_TREE_H_
#define DEMON_ITEMSETS_PREFIX_TREE_H_

#include <cstdint>
#include <vector>

#include "common/audit.h"
#include "data/transaction.h"
#include "itemsets/itemset.h"

namespace demon {

/// \brief Prefix tree (trie) for counting the supports of a set of
/// itemsets in one scan of the data — the candidate-counting structure of
/// [Mue95] that BORDERS' PT-Scan uses (paper §3.1.1).
///
/// Itemsets of mixed sizes may be inserted; each insertion returns a dense
/// id. `CountTransaction` increments the count of every inserted itemset
/// contained in the transaction via sorted subset descent.
class PrefixTree {
 public:
  PrefixTree() { nodes_.push_back(Node{}); }

  /// Inserts a (sorted) itemset and returns its id. Re-inserting an
  /// existing itemset returns the previously assigned id. The empty
  /// itemset is not insertable.
  size_t Insert(const Itemset& itemset);

  /// Number of distinct itemsets inserted.
  size_t NumItemsets() const { return counts_.size(); }

  /// Adds `weight` to the count of every inserted itemset that is a subset
  /// of the (sorted) transaction.
  void CountTransaction(const Transaction& transaction, uint64_t weight = 1);

  /// Counts all transactions of a range of blocks.
  template <typename BlockRange>
  void CountBlocks(const BlockRange& blocks) {
    for (const auto& block : blocks) {
      for (const Transaction& t : block->transactions()) {
        CountTransaction(t);
      }
    }
  }

  /// Count accumulated for the itemset with the given id.
  uint64_t CountOf(size_t id) const { return counts_[id]; }

  /// Resets all counts to zero (the tree structure is kept).
  void ResetCounts();

  /// Removes every inserted itemset, returning the tree to its
  /// freshly-constructed state. The node storage's capacity is kept, so a
  /// cleared tree can be refilled with few or no allocations — the
  /// counting layer reuses one tree per worker this way.
  void Clear();

  /// Deep structural audit: every node reachable exactly once with child
  /// items strictly increasing and child indices above the parent's (the
  /// append-only construction order, which rules out cycles), terminal ids
  /// a dense permutation of [0, NumItemsets()), and counts monotone
  /// non-increasing along every path of terminal nodes (support
  /// monotonicity: a prefix is a subset, so its count can never be
  /// smaller). Appends violations to `audit`.
  void AuditInto(audit::AuditResult* audit) const;

 private:
  struct Node {
    Item item = 0;
    int32_t terminal_id = -1;  // index into counts_, or -1
    // Child node indices; the items of children are strictly increasing.
    std::vector<uint32_t> children;
  };

  void CountRecursive(uint32_t node_index, const Item* pos, const Item* end);

  std::vector<Node> nodes_;
  std::vector<uint64_t> counts_;
  uint64_t weight_ = 1;
};

}  // namespace demon

#endif  // DEMON_ITEMSETS_PREFIX_TREE_H_
