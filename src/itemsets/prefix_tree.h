#ifndef DEMON_ITEMSETS_PREFIX_TREE_H_
#define DEMON_ITEMSETS_PREFIX_TREE_H_

#include <cstdint>
#include <vector>

#include "common/audit.h"
#include "data/transaction.h"
#include "itemsets/itemset.h"

namespace demon {

/// \brief Prefix tree (trie) for counting the supports of a set of
/// itemsets in one scan of the data — the candidate-counting structure of
/// [Mue95] that BORDERS' PT-Scan uses (paper §3.1.1).
///
/// Itemsets of mixed sizes may be inserted; each insertion returns a dense
/// id. `CountTransaction` increments the count of every inserted itemset
/// contained in the transaction via sorted subset descent.
class PrefixTree {
 public:
  PrefixTree() { nodes_.push_back(Node{}); }

  /// Inserts a (sorted) itemset and returns its id. Re-inserting an
  /// existing itemset returns the previously assigned id. The empty
  /// itemset is not insertable.
  size_t Insert(const Itemset& itemset);

  /// Number of distinct itemsets inserted.
  size_t NumItemsets() const { return counts_.size(); }

  /// Adds `weight` to the count of every inserted itemset that is a subset
  /// of the (sorted) transaction.
  void CountTransaction(const Transaction& transaction, uint64_t weight = 1);

  /// Counts all transactions of a range of blocks.
  template <typename BlockRange>
  void CountBlocks(const BlockRange& blocks) {
    for (const auto& block : blocks) {
      for (const Transaction& t : block->transactions()) {
        CountTransaction(t);
      }
    }
  }

  /// Count accumulated for the itemset with the given id.
  uint64_t CountOf(size_t id) const { return counts_[id]; }

  /// Resets all counts to zero (the tree structure is kept).
  void ResetCounts();

  /// Removes every inserted itemset, returning the tree to its
  /// freshly-constructed state. The node storage's capacity is kept, so a
  /// cleared tree can be refilled with few or no allocations — the
  /// counting layer reuses one tree per worker this way.
  void Clear();

  /// Deep structural audit: every node reachable exactly once with child
  /// items strictly increasing and child indices above the parent's (the
  /// append-only construction order, which rules out cycles), terminal ids
  /// a dense permutation of [0, NumItemsets()), and counts monotone
  /// non-increasing along every path of terminal nodes (support
  /// monotonicity: a prefix is a subset, so its count can never be
  /// smaller). Appends violations to `audit`.
  void AuditInto(audit::AuditResult* audit) const;

 private:
  friend class FlatPrefixTree;

  struct Node {
    Item item = 0;
    int32_t terminal_id = -1;  // index into counts_, or -1
    // Child node indices; the items of children are strictly increasing.
    std::vector<uint32_t> children;
  };

  void CountRecursive(uint32_t node_index, const Item* pos, const Item* end);

  std::vector<Node> nodes_;
  std::vector<uint64_t> counts_;
  uint64_t weight_ = 1;
};

/// \brief Read-mostly flat-array image of a PrefixTree for the counting
/// walk — PT-Scan's hottest loop.
///
/// The pointer tree is the right structure while itemsets are being
/// inserted (children vectors grow in place), but its nodes are heap
/// scattered and each holds a std::vector, so the per-transaction descent
/// chases two pointers per child visit. The flat image re-lays the nodes
/// out once per counting pass, breadth-first, as structure-of-arrays:
/// every node's children occupy one contiguous index range (BFS assigns
/// child slots in queue order — the array analog of a first-child/
/// next-sibling layout), so the merge-walk of children against the
/// transaction streams one uint32 array. Terminal ids are preserved, so
/// CountOf is interchangeable with the source tree's.
///
/// Build with BuildFrom once per quiesced batch (CountingContext does this
/// after inserting the candidate set), then count any number of
/// transactions; counts accumulate exactly like the pointer tree's
/// (bit-identical — pinned by prefix_tree_test.cc).
class FlatPrefixTree {
 public:
  /// Rebuilds this image from `tree` with all counts zero. Buffers are
  /// reused across builds, so steady-state rebuilds allocate nothing.
  void BuildFrom(const PrefixTree& tree);

  size_t NumItemsets() const { return counts_.size(); }

  /// Adds `weight` to the count of every itemset of the source tree that
  /// is a subset of the (sorted) transaction.
  void CountTransaction(const Transaction& transaction, uint64_t weight = 1);

  /// Count accumulated for the source tree's itemset id.
  uint64_t CountOf(size_t id) const { return counts_[id]; }

  void ResetCounts();

 private:
  void CountRecursive(uint32_t node, const Item* pos, const Item* end);

  /// Structure-of-arrays node storage, indexed by BFS slot; slot 0 is the
  /// root. children of slot n are slots [child_begin_[n],
  /// child_begin_[n] + child_count_[n]), items strictly increasing.
  std::vector<Item> item_;
  std::vector<int32_t> terminal_;
  std::vector<uint32_t> child_begin_;
  std::vector<uint32_t> child_count_;
  std::vector<uint64_t> counts_;
  /// Build-time map flat slot -> source node index (kept for buffer reuse).
  std::vector<uint32_t> bfs_src_;
  uint64_t weight_ = 1;
};

}  // namespace demon

#endif  // DEMON_ITEMSETS_PREFIX_TREE_H_
