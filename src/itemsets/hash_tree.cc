#include "itemsets/hash_tree.h"

#include "common/check.h"

namespace demon {

HashTree::HashTree(size_t fanout, size_t leaf_capacity)
    : fanout_(fanout),
      leaf_capacity_(leaf_capacity),
      root_(std::make_unique<Node>()) {
  DEMON_CHECK(fanout_ >= 2);
  DEMON_CHECK(leaf_capacity_ >= 1);
}

size_t HashTree::Insert(const Itemset& itemset) {
  DEMON_CHECK(!itemset.empty());
  const auto it = ids_.find(itemset);
  if (it != ids_.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(itemsets_.size());
  itemsets_.push_back(itemset);
  counts_.push_back(0);
  last_stamp_.push_back(0);
  ids_.emplace(itemset, id);
  InsertAt(root_.get(), id, 0);
  return id;
}

void HashTree::InsertAt(Node* node, uint32_t id, size_t depth) {
  const Itemset& itemset = itemsets_[id];
  while (!node->is_leaf) {
    if (itemset.size() <= depth) {
      // Too short to hash further: it lives at this interior node.
      node->entries.push_back(id);
      return;
    }
    const size_t bucket = Bucket(itemset[depth]);
    if (node->children[bucket] == nullptr) {
      node->children[bucket] = std::make_unique<Node>();
    }
    node = node->children[bucket].get();
    ++depth;
  }
  node->entries.push_back(id);
  if (node->entries.size() > leaf_capacity_) SplitLeaf(node, depth);
}

void HashTree::SplitLeaf(Node* node, size_t depth) {
  // Entries of length exactly `depth` cannot hash deeper and stay here.
  bool can_split = false;
  for (uint32_t id : node->entries) {
    if (itemsets_[id].size() > depth) {
      can_split = true;
      break;
    }
  }
  if (!can_split) return;  // all residents; nothing to push down

  std::vector<uint32_t> entries = std::move(node->entries);
  node->entries.clear();
  node->is_leaf = false;
  node->children.resize(fanout_);
  for (uint32_t id : entries) InsertAt(node, id, depth);
}

void HashTree::CountTransaction(const Transaction& transaction,
                                uint64_t weight) {
  if (transaction.empty()) return;
  ++stamp_;
  const auto& items = transaction.items();
  CountRecursive(root_.get(), items.data(), items.data() + items.size(), 0,
                 transaction, weight);
}

void HashTree::CountRecursive(const Node* node, const Item* pos,
                              const Item* end, size_t depth,
                              const Transaction& transaction,
                              uint64_t weight) {
  // A transaction can reach the same node through several hash paths;
  // the per-transaction stamp prevents double counting.
  for (uint32_t id : node->entries) {
    if (last_stamp_[id] == stamp_) continue;
    last_stamp_[id] = stamp_;
    const Itemset& itemset = itemsets_[id];
    if (transaction.ContainsAll(itemset.begin(), itemset.end())) {
      counts_[id] += weight;
    }
  }
  if (node->is_leaf) return;
  for (const Item* p = pos; p != end; ++p) {
    const Node* child = node->children[Bucket(*p)].get();
    if (child != nullptr) {
      CountRecursive(child, p + 1, end, depth + 1, transaction, weight);
    }
  }
}

void HashTree::ResetCounts() {
  std::fill(counts_.begin(), counts_.end(), 0);
  std::fill(last_stamp_.begin(), last_stamp_.end(), 0);
  stamp_ = 0;
}

}  // namespace demon
