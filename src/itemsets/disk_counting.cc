#include "itemsets/disk_counting.h"

#include <algorithm>

#include "common/check.h"
#include "itemsets/prefix_tree.h"

namespace demon {

Result<std::vector<uint64_t>> PtScanCountDisk(
    const std::vector<Itemset>& itemsets,
    const std::vector<TransactionFileScanner*>& scanners,
    CountingStats* stats) {
  PrefixTree tree;
  std::vector<size_t> ids;
  ids.reserve(itemsets.size());
  for (const Itemset& itemset : itemsets) ids.push_back(tree.Insert(itemset));

  for (TransactionFileScanner* scanner : scanners) {
    const uint64_t before = scanner->bytes_read();
    DEMON_RETURN_NOT_OK(scanner->Scan(
        [&tree](const Transaction& t) { tree.CountTransaction(t); }));
    if (stats != nullptr) {
      stats->slots_fetched += (scanner->bytes_read() - before) / sizeof(Item);
    }
  }
  std::vector<uint64_t> counts;
  counts.reserve(itemsets.size());
  for (size_t id : ids) counts.push_back(tree.CountOf(id));
  return counts;
}

namespace {

// Plans the lists used to count `itemset` in one block: pairs (by index
// length, smallest first, both items uncovered) then single items.
struct ListPlan {
  std::vector<std::pair<Item, Item>> pairs;
  std::vector<Item> items;
};

ListPlan PlanLists(const TidListFileReader& reader, const Itemset& itemset,
                   bool use_pair_lists) {
  ListPlan plan;
  const size_t k = itemset.size();
  if (!use_pair_lists || k < 2) {
    plan.items.assign(itemset.begin(), itemset.end());
    return plan;
  }
  std::vector<bool> covered(k, false);
  for (;;) {
    size_t best_i = 0;
    size_t best_j = 0;
    size_t best_length = 0;
    bool found = false;
    for (size_t i = 0; i < k; ++i) {
      if (covered[i]) continue;
      for (size_t j = i + 1; j < k; ++j) {
        if (covered[j]) continue;
        if (!reader.HasPairList(itemset[i], itemset[j])) continue;
        const size_t length = reader.PairListLength(itemset[i], itemset[j]);
        if (!found || length < best_length) {
          found = true;
          best_length = length;
          best_i = i;
          best_j = j;
        }
      }
    }
    if (!found) break;
    plan.pairs.push_back({itemset[best_i], itemset[best_j]});
    covered[best_i] = true;
    covered[best_j] = true;
  }
  for (size_t i = 0; i < k; ++i) {
    if (!covered[i]) plan.items.push_back(itemset[i]);
  }
  return plan;
}

}  // namespace

Result<std::vector<uint64_t>> EcutCountDisk(
    const std::vector<Itemset>& itemsets,
    const std::vector<TidListFileReader*>& readers, bool use_pair_lists,
    CountingStats* stats) {
  std::vector<uint64_t> counts(itemsets.size(), 0);
  std::vector<TidList> fetched;
  for (size_t s = 0; s < itemsets.size(); ++s) {
    const Itemset& itemset = itemsets[s];
    DEMON_CHECK(!itemset.empty());
    uint64_t count = 0;
    for (TidListFileReader* reader : readers) {
      const ListPlan plan = PlanLists(*reader, itemset, use_pair_lists);
      fetched.clear();
      fetched.resize(plan.pairs.size() + plan.items.size());
      size_t slot = 0;
      const uint64_t before = reader->bytes_read();
      for (const auto& [a, b] : plan.pairs) {
        DEMON_RETURN_NOT_OK(reader->ReadPairList(a, b, &fetched[slot++]));
      }
      for (Item item : plan.items) {
        DEMON_RETURN_NOT_OK(reader->ReadItemList(item, &fetched[slot++]));
      }
      if (stats != nullptr) {
        stats->lists_opened += fetched.size();
        stats->slots_fetched +=
            (reader->bytes_read() - before) / sizeof(uint32_t);
      }
      std::vector<const TidList*> pointers;
      pointers.reserve(fetched.size());
      for (const TidList& list : fetched) pointers.push_back(&list);
      count += IntersectionSize(pointers);
    }
    counts[s] = count;
  }
  return counts;
}

}  // namespace demon
