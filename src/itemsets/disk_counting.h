#ifndef DEMON_ITEMSETS_DISK_COUNTING_H_
#define DEMON_ITEMSETS_DISK_COUNTING_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "data/transaction_file.h"
#include "itemsets/itemset.h"
#include "itemsets/support_counting.h"
#include "tidlist/tidlist_file.h"

namespace demon {

/// \brief PT-Scan over disk-resident transaction files: the candidates go
/// into a prefix tree and every file is streamed once. `stats` (optional)
/// receives the true bytes read.
[[nodiscard]] Result<std::vector<uint64_t>> PtScanCountDisk(
    const std::vector<Itemset>& itemsets,
    const std::vector<TransactionFileScanner*>& scanners,
    CountingStats* stats = nullptr);

/// \brief ECUT / ECUT+ over disk-resident TID-list files: per block, the
/// covering lists are chosen from the file *index* (no I/O), then each
/// chosen list is fetched with one seek+read and the intersection is
/// computed in memory — the paper's "retrieve only the relevant portion"
/// made literal. With `use_pair_lists`, materialized 2-itemset lists are
/// preferred greedily (smallest first), as in ECUT+.
[[nodiscard]] Result<std::vector<uint64_t>> EcutCountDisk(
    const std::vector<Itemset>& itemsets,
    const std::vector<TidListFileReader*>& readers, bool use_pair_lists,
    CountingStats* stats = nullptr);

}  // namespace demon

#endif  // DEMON_ITEMSETS_DISK_COUNTING_H_
