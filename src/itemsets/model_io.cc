#include "itemsets/model_io.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "persistence/file_header.h"

namespace demon {

namespace {

constexpr uint32_t kModelFormatVersion = 1;

}  // namespace

void SerializeItemsetModel(persistence::Writer& w, const ItemsetModel& model) {
  w.WriteDouble(model.minsup());
  w.WriteU64(model.num_items());
  w.WriteU64(model.num_transactions());
  w.WriteU64(model.entries().size());
  // Canonical order: the entry map is unordered, but checkpoints of equal
  // models must be byte-equal for the restore-equivalence tests.
  std::vector<const std::pair<const Itemset, ItemsetModel::Entry>*> sorted;
  sorted.reserve(model.entries().size());
  for (const auto& entry : model.entries()) sorted.push_back(&entry);
  std::sort(sorted.begin(), sorted.end(),
            [](const auto* a, const auto* b) {
              return ItemsetLess()(a->first, b->first);
            });
  for (const auto* entry : sorted) {
    w.WriteU32Vector(entry->first);
    w.WriteU64(entry->second.count);
    w.WriteBool(entry->second.frequent);
  }
}

void DeserializeItemsetModel(persistence::Reader& r, ItemsetModel* model) {
  const double minsup = r.ReadDouble();
  const uint64_t num_items = r.ReadU64();
  const uint64_t num_transactions = r.ReadU64();
  const size_t num_entries = r.ReadLength(sizeof(uint64_t) + 1);
  if (!r.ok()) return;
  if (!(minsup > 0.0 && minsup < 1.0)) {
    r.Fail("model minsup outside (0, 1)");
    return;
  }
  ItemsetModel loaded(minsup, num_items);
  loaded.set_num_transactions(num_transactions);
  for (size_t e = 0; e < num_entries; ++e) {
    Itemset itemset = r.ReadU32Vector();
    const uint64_t count = r.ReadU64();
    const bool frequent = r.ReadBool();
    if (!r.ok()) return;
    loaded.mutable_entries()->emplace(std::move(itemset),
                                      ItemsetModel::Entry{count, frequent});
  }
  *model = std::move(loaded);
}

Status WriteItemsetModel(const ItemsetModel& model, const std::string& path) {
  persistence::Writer payload;
  SerializeItemsetModel(payload, model);
  return persistence::WritePayloadFile(path, persistence::FormatId::kItemsetModel,
                                       kModelFormatVersion, payload);
}

Result<ItemsetModel> ReadItemsetModel(const std::string& path) {
  DEMON_ASSIGN_OR_RETURN(
      const std::string payload,
      persistence::ReadPayloadFile(path, persistence::FormatId::kItemsetModel,
                                   kModelFormatVersion));
  persistence::Reader r(payload);
  ItemsetModel model;
  DeserializeItemsetModel(r, &model);
  DEMON_RETURN_NOT_OK(r.status());
  if (!r.AtEnd()) {
    return Status::DataLoss("trailing bytes after model payload: " + path);
  }
  return model;
}

uint64_t SerializedModelBytes(const ItemsetModel& model) {
  // FileHeader + (minsup, num_items, num_transactions, num_entries) +
  // per entry: length-prefixed items + count + frequent byte. Must stay in
  // lockstep with SerializeItemsetModel; model_io_test asserts predicted ==
  // written for empty, single-itemset, and large models.
  uint64_t bytes = persistence::FileHeader::kBytes + 4 * sizeof(uint64_t);
  for (const auto& [itemset, entry] : model.entries()) {
    bytes += sizeof(uint64_t) + itemset.size() * sizeof(Item) +
             sizeof(uint64_t) + 1;
  }
  return bytes;
}

}  // namespace demon
