#include "itemsets/model_io.h"

#include <cstdio>
#include <cstring>

namespace demon {

namespace {

constexpr uint64_t kMagic = 0x44454d4f4e4d4431ULL;  // "DEMONMD1"

bool WriteU64(std::FILE* f, uint64_t v) {
  return std::fwrite(&v, sizeof(v), 1, f) == 1;
}

bool ReadU64(std::FILE* f, uint64_t* v) {
  return std::fread(v, sizeof(*v), 1, f) == 1;
}

}  // namespace

Status WriteItemsetModel(const ItemsetModel& model, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open for write: " + path);

  const double minsup = model.minsup();
  uint64_t minsup_bits = 0;
  static_assert(sizeof(minsup_bits) == sizeof(minsup));
  std::memcpy(&minsup_bits, &minsup, sizeof(minsup));

  bool ok = WriteU64(f, kMagic) && WriteU64(f, minsup_bits) &&
            WriteU64(f, model.num_items()) &&
            WriteU64(f, model.num_transactions()) &&
            WriteU64(f, model.entries().size());
  for (auto it = model.entries().begin(); ok && it != model.entries().end();
       ++it) {
    const auto& [itemset, entry] = *it;
    ok = WriteU64(f, itemset.size()) &&
         (itemset.empty() ||
          std::fwrite(itemset.data(), sizeof(Item), itemset.size(), f) ==
              itemset.size()) &&
         WriteU64(f, entry.count) && WriteU64(f, entry.frequent ? 1 : 0);
  }
  std::fclose(f);
  if (!ok) return Status::IoError("short write: " + path);
  return Status::OK();
}

Result<ItemsetModel> ReadItemsetModel(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open for read: " + path);

  uint64_t magic = 0;
  uint64_t minsup_bits = 0;
  uint64_t num_items = 0;
  uint64_t num_transactions = 0;
  uint64_t num_entries = 0;
  bool ok = ReadU64(f, &magic) && magic == kMagic &&
            ReadU64(f, &minsup_bits) && ReadU64(f, &num_items) &&
            ReadU64(f, &num_transactions) && ReadU64(f, &num_entries);
  double minsup = 0.0;
  std::memcpy(&minsup, &minsup_bits, sizeof(minsup));
  if (!ok || minsup <= 0.0 || minsup >= 1.0) {
    std::fclose(f);
    return Status::IoError("corrupt model file: " + path);
  }
  ItemsetModel model(minsup, num_items);
  model.set_num_transactions(num_transactions);
  for (uint64_t e = 0; ok && e < num_entries; ++e) {
    uint64_t size = 0;
    ok = ReadU64(f, &size);
    Itemset itemset(size);
    if (ok && size > 0) {
      ok = std::fread(itemset.data(), sizeof(Item), size, f) == size;
    }
    uint64_t count = 0;
    uint64_t frequent = 0;
    ok = ok && ReadU64(f, &count) && ReadU64(f, &frequent);
    if (ok) {
      model.mutable_entries()->emplace(
          std::move(itemset), ItemsetModel::Entry{count, frequent != 0});
    }
  }
  std::fclose(f);
  if (!ok) return Status::IoError("corrupt model file: " + path);
  return model;
}

uint64_t SerializedModelBytes(const ItemsetModel& model) {
  uint64_t bytes = 5 * sizeof(uint64_t);
  for (const auto& [itemset, entry] : model.entries()) {
    bytes += 3 * sizeof(uint64_t) + itemset.size() * sizeof(Item);
  }
  return bytes;
}

}  // namespace demon
