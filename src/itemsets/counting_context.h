#ifndef DEMON_ITEMSETS_COUNTING_CONTEXT_H_
#define DEMON_ITEMSETS_COUNTING_CONTEXT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/telemetry.h"
#include "common/thread_pool.h"
#include "data/block.h"
#include "itemsets/prefix_tree.h"
#include "itemsets/support_counting.h"
#include "tidlist/tidlist.h"
#include "tidlist/tidlist_store.h"

namespace demon {

/// \brief The support-counting kernel behind PT-Scan, ECUT and ECUT+:
/// parallel across an optional shared ThreadPool and allocation-free in
/// steady state via per-shard scratch buffers that persist across calls.
///
/// Figures 2 and 4-7 — the paper's core claims — are pure support-counting
/// benchmarks, so this is the hot path of every itemset monitor. A context
/// shards the work (candidate itemsets for ECUT/ECUT+, transactions for
/// PT-Scan) over `ParallelFor`, which lets the MaintenanceEngine share one
/// pool between monitor-level and counting-level parallelism: counting
/// called from inside a monitor-update task simply claims shards alongside
/// the pool's workers.
///
/// Results are bit-identical to the sequential path for every strategy and
/// thread count (DESIGN.md invariant 2): ECUT shards write disjoint count
/// slots, PT-Scan sums per-shard uint64 counts (integer addition is
/// order-independent), and stats are merged as sums.
///
/// A context belongs to one maintainer and is not itself thread-safe: one
/// counting call at a time. Distinct contexts may share a pool freely.
/// Copying a context copies only the pool and telemetry bindings —
/// scratch is a cache and is rebuilt lazily — which keeps
/// BordersMaintainer cheaply copyable.
class CountingContext {
 public:
  /// A sequential context (no pool).
  CountingContext() = default;

  /// A context fanning work out over `pool` (not owned; may be null for
  /// sequential operation). With a pool of one worker, counting stays on
  /// the calling thread.
  explicit CountingContext(ThreadPool* pool) : pool_(pool) {}

  CountingContext(const CountingContext& other)
      : pool_(other.pool_), telemetry_(other.telemetry_) {
    CacheMetrics();
  }
  CountingContext& operator=(const CountingContext& other) {
    pool_ = other.pool_;
    telemetry_ = other.telemetry_;
    CacheMetrics();
    return *this;
  }
  CountingContext(CountingContext&&) = default;
  CountingContext& operator=(CountingContext&&) = default;

  /// Rebinds the pool (null returns the context to sequential mode).
  void set_pool(ThreadPool* pool) { pool_ = pool; }
  ThreadPool* pool() const { return pool_; }

  /// Binds the registry receiving per-call and per-shard spans (the
  /// shard spans make per-thread load imbalance visible in a trace) and
  /// the kernel counters `counting/{slots_fetched,lists_opened,
  /// transactions_scanned,itemsets_counted}`. Null unbinds; no-op in
  /// DEMON_TELEMETRY=OFF builds, so the hot loops stay untouched.
  void set_telemetry([[maybe_unused]] telemetry::TelemetryRegistry* registry) {
    if constexpr (telemetry::kEnabled) {
      telemetry_ = registry;
      CacheMetrics();
    }
  }
  telemetry::TelemetryRegistry* telemetry() const { return telemetry_; }

  /// PT-Scan: one pass over all transactions of `blocks` with per-shard
  /// prefix-tree clones summed after the barrier. Stats accumulate into
  /// `*stats` when non-null; the non-instrumented path pays nothing for
  /// them.
  std::vector<uint64_t> PtScan(
      const std::vector<Itemset>& itemsets,
      const std::vector<std::shared_ptr<const TransactionBlock>>& blocks,
      CountingStats* stats = nullptr);

  /// ECUT / ECUT+: candidate itemsets are sharded across the pool; each
  /// shard intersects per-block TID-list views with its own reusable
  /// buffers. The ECUT+ covering of an itemset by materialized pair lists
  /// is computed once per itemset from the always-resident directory (no
  /// payload I/O); a chosen pair falls back to its two item lists in
  /// blocks where it is not materialized, which leaves the counts exact
  /// (any cover intersects to the same support).
  ///
  /// Residency-aware: each shard builds every plan first, then visits
  /// blocks resident-first (TidListStore::ResidencyOrder) holding one
  /// lease per block, so a paged-out block is faulted in at most once per
  /// shard and all the shard's itemsets batch over it while it is pinned.
  /// Block visit order never changes counts (per-block supports sum).
  std::vector<uint64_t> Ecut(const std::vector<Itemset>& itemsets,
                             const TidListStore& store, bool use_pair_lists,
                             CountingStats* stats = nullptr);

  /// Dispatches on `strategy`. PT-Scan uses `blocks`; ECUT variants use
  /// `store`.
  std::vector<uint64_t> Count(
      CountingStrategy strategy, const std::vector<Itemset>& itemsets,
      const std::vector<std::shared_ptr<const TransactionBlock>>& blocks,
      const TidListStore& store, CountingStats* stats = nullptr);

  /// Level-1 counting: occurrences of every item of [0, num_items) across
  /// `blocks`, sharded over transactions with per-shard dense arrays
  /// (Apriori's base level).
  std::vector<uint64_t> CountItems(
      const std::vector<std::shared_ptr<const TransactionBlock>>& blocks,
      size_t num_items);

 private:
  /// One entry of an ECUT+ cover plan: a materialized pair (is_pair) or a
  /// single item (b unused).
  struct CoverEntry {
    Item a = 0;
    Item b = 0;
    bool is_pair = false;
  };

  /// Per-shard reusable state. unique_ptr entries keep addresses stable
  /// while workers use them.
  struct Scratch {
    PrefixTree tree;
    /// Flat-array image of the candidate tree PT-Scan's transaction walk
    /// runs on (rebuilt once per call from shard 0's pointer tree).
    FlatPrefixTree flat;
    std::vector<uint64_t> item_counts;
    IntersectionScratch intersect;
    std::vector<TidListView> views;
    /// Cover plans for the shard's itemset range, built before any block
    /// payload is touched.
    std::vector<std::vector<CoverEntry>> plans;
    std::vector<uint64_t> pair_sizes;
    std::vector<bool> covered;
    CountingStats stats;
    uint64_t touched = 0;
  };

  /// Number of shards for `work` units with at least `min_per_shard` units
  /// each — 1 without a pool; with one, at most the calling thread plus
  /// the pool's unborrowed parallelism tokens (ThreadPool's pool-wide
  /// budget). Sizing to the token remainder is what keeps nested fan-out
  /// from queueing shards behind busy monitor-level tasks — the
  /// oversubscription that made 4-thread counting slower than 1-thread in
  /// BENCH_engine.json.
  size_t ShardCountFor(size_t work, size_t min_per_shard) const;

  /// Estimated total TID slots an ECUT pass over `itemsets` touches, from
  /// directory cardinalities only (no payload I/O): each itemset is
  /// charged its smallest item's total list size across blocks. Fills
  /// item_totals_ lazily for the items the batch names.
  uint64_t EstimateEcutSlots(const std::vector<Itemset>& itemsets,
                             const TidListStore& store);

  /// Grows scratch_ to `shards` entries and resets their per-call stats.
  void PrepareScratch(size_t shards);

  /// Folds every shard's stats into `*stats` (no-op when null).
  void MergeStats(size_t shards, CountingStats* stats) const;

  /// Computes the cover plan for `itemset` into `*plan` (ECUT: one item
  /// list per item; ECUT+: greedy pair cover by smallest total size).
  /// Reads only directory metadata — valid for evicted blocks.
  void BuildCoverPlan(const Itemset& itemset, const TidListStore& store,
                      bool use_pair_lists, Scratch* s,
                      std::vector<CoverEntry>* plan) const;

  /// Re-resolves the cached counter pointers from telemetry_ (all null
  /// when unbound, so the hot paths test one pointer).
  void CacheMetrics();

  /// True when per-shard stats must be collected this call: the caller
  /// asked for them, or bound counters will absorb them.
  bool CollectStats(const CountingStats* stats) const {
    return stats != nullptr || slots_fetched_ != nullptr;
  }

  ThreadPool* pool_ = nullptr;
  std::vector<std::unique_ptr<Scratch>> scratch_;
  /// Lazy per-item total-cardinality cache for EstimateEcutSlots (reused
  /// buffer; rebuilt each Ecut call).
  std::vector<uint64_t> item_totals_;
  /// All null in DEMON_TELEMETRY=OFF builds (see set_telemetry).
  telemetry::TelemetryRegistry* telemetry_ = nullptr;
  telemetry::Counter* slots_fetched_ = nullptr;
  telemetry::Counter* lists_opened_ = nullptr;
  telemetry::Counter* transactions_scanned_ = nullptr;
  telemetry::Counter* itemsets_counted_ = nullptr;
  /// `counting/intersect_seconds_<enc>_<enc>` histograms indexed by the
  /// encodings of the two smallest views of an intersection (the pair the
  /// k-way kernel folds first). All null when unbound, so the encoding
  /// scan and the timer are skipped entirely on the plain hot path.
  telemetry::Histogram* intersect_seconds_[kNumTidEncodings]
                                          [kNumTidEncodings] = {};
};

}  // namespace demon

#endif  // DEMON_ITEMSETS_COUNTING_CONTEXT_H_
