#ifndef DEMON_ITEMSETS_HASH_TREE_H_
#define DEMON_ITEMSETS_HASH_TREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "data/transaction.h"
#include "itemsets/itemset.h"

namespace demon {

/// \brief Hash tree for candidate support counting [AMS+96] — the
/// alternative to the prefix tree that the paper's footnote 7 mentions.
///
/// Interior nodes hash the next item of a candidate into one of `fanout`
/// buckets; leaves store up to `leaf_capacity` candidates and split when
/// they overflow (unless the depth already equals the candidate length).
/// Counting a transaction recursively hashes each remaining item at
/// interior nodes and subset-checks the candidates at reached leaves.
///
/// Interface-compatible with PrefixTree (Insert/CountTransaction/CountOf)
/// so the two can be swapped and benchmarked against each other.
class HashTree {
 public:
  explicit HashTree(size_t fanout = 8, size_t leaf_capacity = 16);

  /// Inserts a (sorted, non-empty) itemset; returns its dense id.
  /// Re-inserting returns the previously assigned id.
  size_t Insert(const Itemset& itemset);

  size_t NumItemsets() const { return counts_.size(); }

  /// Adds `weight` to every inserted itemset contained in `transaction`.
  void CountTransaction(const Transaction& transaction, uint64_t weight = 1);

  uint64_t CountOf(size_t id) const { return counts_[id]; }

  void ResetCounts();

 private:
  struct Node {
    bool is_leaf = true;
    /// Leaf payload: ids into itemsets_/counts_.
    std::vector<uint32_t> entries;
    /// Interior: children, one per hash bucket (may contain nulls).
    std::vector<std::unique_ptr<Node>> children;
  };

  size_t Bucket(Item item) const { return item % fanout_; }

  void InsertAt(Node* node, uint32_t id, size_t depth);
  void SplitLeaf(Node* node, size_t depth);
  void CountRecursive(const Node* node, const Item* pos, const Item* end,
                      size_t depth, const Transaction& transaction,
                      uint64_t weight);

  size_t fanout_;
  size_t leaf_capacity_;
  std::unique_ptr<Node> root_;
  std::vector<Itemset> itemsets_;
  std::vector<uint64_t> counts_;
  ItemsetMap<size_t> ids_;
  /// Guard against double counting: last transaction stamp per itemset.
  std::vector<uint64_t> last_stamp_;
  uint64_t stamp_ = 0;
};

}  // namespace demon

#endif  // DEMON_ITEMSETS_HASH_TREE_H_
