#include "itemsets/counting_context.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace demon {

namespace {

// Minimum work per shard: below these, the fan-out overhead outweighs the
// win and counting stays on one shard. Shard count never changes results,
// only scheduling (sums are order-independent).
constexpr size_t kMinTransactionsPerShard = 256;
constexpr size_t kMinItemsetsPerShard = 4;
// ECUT's finer-grained floor: estimated TID slots per shard. An ECUT call
// over few-but-tiny lists (the common steady-state candidate batch) is not
// worth a fan-out even when it clears the itemset floor; the estimate
// comes from directory cardinalities alone, so it costs no payload I/O.
constexpr uint64_t kMinSlotsPerShard = 4096;

// [begin, end) of shard `shard` when `work` units are split as evenly as
// possible over `shards` contiguous ranges.
std::pair<size_t, size_t> ShardRange(size_t work, size_t shard,
                                     size_t shards) {
  const size_t base = work / shards;
  const size_t extra = work % shards;
  const size_t begin = shard * base + std::min(shard, extra);
  return {begin, begin + base + (shard < extra ? 1 : 0)};
}

}  // namespace

size_t CountingContext::ShardCountFor(size_t work,
                                      size_t min_per_shard) const {
  if (pool_ == nullptr || pool_->num_threads() <= 1) return 1;
  // Capacity follows the pool's token budget: the calling thread plus
  // whatever tokens outer layers (in-flight monitor tasks, enclosing
  // ParallelFors) have left unborrowed. When monitors hold the whole
  // budget each one counts serially on its own worker — the behavior that
  // fixed the 4-thread regression in BENCH_engine.json — and as monitors
  // retire, their returned tokens let late counting calls fan back out.
  // The snapshot is advisory; ParallelFor re-acquires tokens for real at
  // submission time, so a stale read costs load balance, never
  // correctness.
  const size_t capacity =
      std::min(pool_->num_threads(), pool_->ApproxAvailableTokens() + 1);
  const size_t by_work = work / min_per_shard;
  return std::max<size_t>(1, std::min(by_work, capacity));
}

void CountingContext::CacheMetrics() {
  if (telemetry_ == nullptr) {
    slots_fetched_ = nullptr;
    lists_opened_ = nullptr;
    transactions_scanned_ = nullptr;
    itemsets_counted_ = nullptr;
    for (auto& row : intersect_seconds_) {
      for (auto& cell : row) cell = nullptr;
    }
    return;
  }
  slots_fetched_ = telemetry_->counter("counting/slots_fetched");
  lists_opened_ = telemetry_->counter("counting/lists_opened");
  transactions_scanned_ = telemetry_->counter("counting/transactions_scanned");
  itemsets_counted_ = telemetry_->counter("counting/itemsets_counted");
  for (uint8_t a = 0; a < kNumTidEncodings; ++a) {
    for (uint8_t b = 0; b < kNumTidEncodings; ++b) {
      intersect_seconds_[a][b] = telemetry_->histogram(
          std::string("counting/intersect_seconds_") +
          TidEncodingName(static_cast<TidEncoding>(a)) + "_" +
          TidEncodingName(static_cast<TidEncoding>(b)));
    }
  }
}

void CountingContext::PrepareScratch(size_t shards) {
  while (scratch_.size() < shards) {
    scratch_.push_back(std::make_unique<Scratch>());
  }
  for (size_t i = 0; i < shards; ++i) {
    scratch_[i]->stats = CountingStats{};
    scratch_[i]->touched = 0;
  }
}

void CountingContext::MergeStats(size_t shards, CountingStats* stats) const {
  if (stats == nullptr) return;
  for (size_t i = 0; i < shards; ++i) {
    stats->slots_fetched += scratch_[i]->stats.slots_fetched;
    stats->lists_opened += scratch_[i]->stats.lists_opened;
    stats->slots_fetched += scratch_[i]->touched;
  }
}

std::vector<uint64_t> CountingContext::PtScan(
    const std::vector<Itemset>& itemsets,
    const std::vector<std::shared_ptr<const TransactionBlock>>& blocks,
    CountingStats* stats) {
  if (itemsets.empty()) return {};
  DEMON_TRACE_SPAN(call_span, telemetry_, "pt-scan", "counting");
  [[maybe_unused]] const uint64_t call_span_id = DEMON_SPAN_ID(call_span);

  size_t total_transactions = 0;
  for (const auto& block : blocks) total_transactions += block->size();
  const size_t shards =
      ShardCountFor(total_transactions, kMinTransactionsPerShard);
  PrepareScratch(shards);

  // Build the pointer tree once in shard 0's scratch, flatten it to the
  // array image the transaction walk runs on, and give every shard its
  // own copy (flat arrays, so the copy is a few memcpys — far cheaper
  // than cloning the pointer tree's per-node child vectors).
  PrefixTree& master = scratch_[0]->tree;
  master.Clear();
  std::vector<size_t> ids;
  ids.reserve(itemsets.size());
  for (const Itemset& itemset : itemsets) ids.push_back(master.Insert(itemset));
  scratch_[0]->flat.BuildFrom(master);
  for (size_t s = 1; s < shards; ++s) scratch_[s]->flat = scratch_[0]->flat;

  const bool collect_stats = CollectStats(stats);
  ParallelFor(shards > 1 ? pool_ : nullptr, shards, [&](size_t shard) {
    // The dispatching thread claims shards too, but workers have an empty
    // span stack, so the parent must travel explicitly.
    DEMON_TRACE_SPAN_UNDER(shard_span, telemetry_,
                           "pt-scan shard " + std::to_string(shard),
                           "counting", call_span_id);
    Scratch& s = *scratch_[shard];
    const auto [begin, end] = ShardRange(total_transactions, shard, shards);
    uint64_t touched = 0;
    size_t offset = 0;
    for (const auto& block : blocks) {
      if (offset >= end) break;
      const auto& transactions = block->transactions();
      const size_t lo = begin > offset ? begin - offset : 0;
      const size_t hi = std::min(transactions.size(),
                                 end - offset);
      if (collect_stats) {
        for (size_t i = lo; i < hi; ++i) {
          s.flat.CountTransaction(transactions[i]);
          touched += transactions[i].size();
        }
      } else {
        for (size_t i = lo; i < hi; ++i) {
          s.flat.CountTransaction(transactions[i]);
        }
      }
      offset += transactions.size();
    }
    s.touched = touched;
  });

  std::vector<uint64_t> counts(itemsets.size(), 0);
  for (size_t shard = 0; shard < shards; ++shard) {
    const FlatPrefixTree& flat = scratch_[shard]->flat;
    for (size_t i = 0; i < ids.size(); ++i) counts[i] += flat.CountOf(ids[i]);
  }
  MergeStats(shards, stats);
  if (slots_fetched_ != nullptr) {
    uint64_t touched = 0;
    for (size_t shard = 0; shard < shards; ++shard) {
      touched += scratch_[shard]->touched;
    }
    slots_fetched_->Add(touched);
    transactions_scanned_->Add(total_transactions);
    itemsets_counted_->Add(itemsets.size());
  }
  return counts;
}

uint64_t CountingContext::EstimateEcutSlots(
    const std::vector<Itemset>& itemsets, const TidListStore& store) {
  constexpr uint64_t kUnknown = std::numeric_limits<uint64_t>::max();
  size_t num_items = 0;
  for (const auto& block : store.blocks()) {
    num_items = std::max(num_items, block->num_items());
  }
  // Per-item totals are filled lazily — only items the batch actually
  // names are summed — into a buffer reused across calls.
  item_totals_.assign(num_items, kUnknown);
  uint64_t total = 0;
  for (const Itemset& itemset : itemsets) {
    uint64_t best = kUnknown;
    for (Item item : itemset) {
      if (item >= num_items) {
        best = 0;
        break;
      }
      uint64_t& slot = item_totals_[item];
      if (slot == kUnknown) {
        uint64_t sum = 0;
        for (const auto& block : store.blocks()) {
          if (item < block->num_items()) sum += block->ItemListSize(item);
        }
        slot = sum;
      }
      best = std::min(best, slot);
    }
    total += best == kUnknown ? 0 : best;
  }
  return total;
}

void CountingContext::BuildCoverPlan(const Itemset& itemset,
                                     const TidListStore& store,
                                     bool use_pair_lists, Scratch* s,
                                     std::vector<CoverEntry>* plan) const {
  DEMON_CHECK(!itemset.empty());
  plan->clear();
  const size_t k = itemset.size();
  bool any_pair_lists = false;
  if (use_pair_lists && k >= 2) {
    for (const auto& block : store.blocks()) {
      if (block->num_pair_lists() > 0) {
        any_pair_lists = true;
        break;
      }
    }
  }
  if (!any_pair_lists) {
    for (Item item : itemset) plan->push_back({item, 0, false});
    return;
  }

  // ECUT+ covering rule (paper §3.1.1), hoisted out of the per-block loop:
  // greedily pick the materialized pair with the smallest *total* list
  // size across blocks whose two items are still uncovered; cover the
  // remainder with item lists. Sizes come from the always-resident
  // directory, so planning touches no payload and triggers no page-in.
  // Any cover intersects to the exact support, so hoisting never changes
  // counts — blocks missing a chosen pair fall back to the pair's two item
  // lists at count time. The greedy score stays cardinality-based even
  // though encoded byte costs differ: cardinality bounds every kernel's
  // work, while encoded size only bounds its input scan.
  constexpr uint64_t kUnmaterialized = std::numeric_limits<uint64_t>::max();
  s->pair_sizes.assign(k * k, kUnmaterialized);
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = i + 1; j < k; ++j) {
      uint64_t total = kUnmaterialized;
      for (const auto& block : store.blocks()) {
        if (!block->HasPairList(itemset[i], itemset[j])) continue;
        if (total == kUnmaterialized) total = 0;
        total += block->PairListSize(itemset[i], itemset[j]);
      }
      s->pair_sizes[i * k + j] = total;
    }
  }
  s->covered.assign(k, false);
  for (;;) {
    uint64_t best_size = kUnmaterialized;
    size_t best_i = 0;
    size_t best_j = 0;
    for (size_t i = 0; i < k; ++i) {
      if (s->covered[i]) continue;
      for (size_t j = i + 1; j < k; ++j) {
        if (s->covered[j]) continue;
        const uint64_t size = s->pair_sizes[i * k + j];
        if (size < best_size) {
          best_size = size;
          best_i = i;
          best_j = j;
        }
      }
    }
    if (best_size == kUnmaterialized) break;
    plan->push_back({itemset[best_i], itemset[best_j], true});
    s->covered[best_i] = true;
    s->covered[best_j] = true;
  }
  for (size_t i = 0; i < k; ++i) {
    if (!s->covered[i]) plan->push_back({itemset[i], 0, false});
  }
}

std::vector<uint64_t> CountingContext::Ecut(
    const std::vector<Itemset>& itemsets, const TidListStore& store,
    bool use_pair_lists, CountingStats* stats) {
  std::vector<uint64_t> counts(itemsets.size(), 0);
  if (itemsets.empty()) return counts;
  DEMON_TRACE_SPAN(call_span, telemetry_, use_pair_lists ? "ecut+" : "ecut",
                   "counting");
  [[maybe_unused]] const uint64_t call_span_id = DEMON_SPAN_ID(call_span);
  size_t shards = ShardCountFor(itemsets.size(), kMinItemsetsPerShard);
  if (shards > 1) {
    // Second floor: estimated intersection work, so a batch of many tiny
    // candidates stays serial. Each itemset is charged its smallest item's
    // total directory cardinality — the bound on what the smallest-first
    // k-way kernel touches.
    const uint64_t slots = EstimateEcutSlots(itemsets, store);
    shards = std::min(shards, static_cast<size_t>(std::max<uint64_t>(
                                  1, slots / kMinSlotsPerShard)));
  }
  PrepareScratch(shards);

  // Resident blocks first: while this shard set works through the already
  // in-memory blocks, nothing waits on disk; each evicted block is then
  // faulted in exactly once per shard and all the shard's itemsets batch
  // over it under one lease. Advisory only — per-block supports sum, so
  // any visit order yields bit-identical counts.
  std::vector<uint32_t> block_order;
  store.ResidencyOrder(&block_order);

  const bool collect_stats = CollectStats(stats);
  const bool time_intersections = intersect_seconds_[0][0] != nullptr;
  ParallelFor(shards > 1 ? pool_ : nullptr, shards, [&](size_t shard) {
    DEMON_TRACE_SPAN_UNDER(shard_span, telemetry_,
                           "ecut shard " + std::to_string(shard), "counting",
                           call_span_id);
    Scratch& s = *scratch_[shard];
    const auto [begin, end] = ShardRange(itemsets.size(), shard, shards);
    const size_t range = end - begin;
    // Phase 1: plans for the whole range, from directory metadata only.
    if (s.plans.size() < range) s.plans.resize(range);
    for (size_t i = begin; i < end; ++i) {
      BuildCoverPlan(itemsets[i], store, use_pair_lists, &s,
                     &s.plans[i - begin]);
    }
    // Phase 2: block-outer loop; counts[i] slots are disjoint per shard.
    for (const uint32_t block_index : block_order) {
      const BlockTidLists& block = store.block(block_index);
      const TidListLease lease = block.Lease();
      for (size_t i = begin; i < end; ++i) {
        s.views.clear();
        for (const CoverEntry& entry : s.plans[i - begin]) {
          if (entry.is_pair && block.HasPairList(entry.a, entry.b)) {
            s.views.push_back(block.PairView(entry.a, entry.b));
          } else if (entry.is_pair) {
            s.views.push_back(block.ItemView(entry.a));
            s.views.push_back(block.ItemView(entry.b));
          } else {
            s.views.push_back(block.ItemView(entry.a));
          }
        }
        if (collect_stats) {
          s.stats.lists_opened += s.views.size();
          for (const TidListView& view : s.views) {
            s.stats.slots_fetched += view.size();
          }
        }
        if (time_intersections && s.views.size() >= 2) {
          // Key the histogram by the encodings of the two smallest views —
          // the pair the k-way kernel folds first, which dominates cost.
          size_t small0 = 0;
          size_t small1 = 1;
          if (s.views[small1].num_tids < s.views[small0].num_tids) {
            std::swap(small0, small1);
          }
          for (size_t v = 2; v < s.views.size(); ++v) {
            if (s.views[v].num_tids < s.views[small0].num_tids) {
              small1 = small0;
              small0 = v;
            } else if (s.views[v].num_tids < s.views[small1].num_tids) {
              small1 = v;
            }
          }
          telemetry::ScopedTimer timer(
              intersect_seconds_[static_cast<uint8_t>(
                  s.views[small0].encoding)][static_cast<uint8_t>(
                  s.views[small1].encoding)]);
          counts[i] += IntersectionSize(s.views, &s.intersect);
        } else {
          counts[i] += IntersectionSize(s.views, &s.intersect);
        }
      }
    }
  });
  MergeStats(shards, stats);
  if (slots_fetched_ != nullptr) {
    CountingStats merged;
    MergeStats(shards, &merged);
    slots_fetched_->Add(merged.slots_fetched);
    lists_opened_->Add(merged.lists_opened);
    itemsets_counted_->Add(itemsets.size());
  }
  return counts;
}

std::vector<uint64_t> CountingContext::Count(
    CountingStrategy strategy, const std::vector<Itemset>& itemsets,
    const std::vector<std::shared_ptr<const TransactionBlock>>& blocks,
    const TidListStore& store, CountingStats* stats) {
  switch (strategy) {
    case CountingStrategy::kPtScan:
      return PtScan(itemsets, blocks, stats);
    case CountingStrategy::kEcut:
      return Ecut(itemsets, store, /*use_pair_lists=*/false, stats);
    case CountingStrategy::kEcutPlus:
      return Ecut(itemsets, store, /*use_pair_lists=*/true, stats);
  }
  return {};
}

std::vector<uint64_t> CountingContext::CountItems(
    const std::vector<std::shared_ptr<const TransactionBlock>>& blocks,
    size_t num_items) {
  size_t total_transactions = 0;
  for (const auto& block : blocks) total_transactions += block->size();
  DEMON_TRACE_SPAN(call_span, telemetry_, "count-items", "counting");
  [[maybe_unused]] const uint64_t call_span_id = DEMON_SPAN_ID(call_span);
  const size_t shards =
      ShardCountFor(total_transactions, kMinTransactionsPerShard);
  PrepareScratch(shards);

  ParallelFor(shards > 1 ? pool_ : nullptr, shards, [&](size_t shard) {
    DEMON_TRACE_SPAN_UNDER(shard_span, telemetry_,
                           "count-items shard " + std::to_string(shard),
                           "counting", call_span_id);
    Scratch& s = *scratch_[shard];
    s.item_counts.assign(num_items, 0);
    const auto [begin, end] = ShardRange(total_transactions, shard, shards);
    size_t offset = 0;
    for (const auto& block : blocks) {
      if (offset >= end) break;
      const auto& transactions = block->transactions();
      const size_t lo = begin > offset ? begin - offset : 0;
      const size_t hi = std::min(transactions.size(), end - offset);
      for (size_t i = lo; i < hi; ++i) {
        for (Item item : transactions[i].items()) {
          DEMON_CHECK_MSG(item < num_items, "item outside universe");
          ++s.item_counts[item];
        }
      }
      offset += transactions.size();
    }
  });

  std::vector<uint64_t> counts(num_items, 0);
  for (size_t shard = 0; shard < shards; ++shard) {
    const auto& partial = scratch_[shard]->item_counts;
    for (size_t item = 0; item < num_items; ++item) {
      counts[item] += partial[item];
    }
  }
  if (transactions_scanned_ != nullptr) {
    transactions_scanned_->Add(total_transactions);
  }
  return counts;
}

}  // namespace demon
