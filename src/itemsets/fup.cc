#include "itemsets/fup.h"

#include <algorithm>

#include "common/check.h"
#include "common/telemetry.h"
#include "itemsets/apriori.h"
#include "itemsets/candidate_generation.h"
#include "itemsets/prefix_tree.h"

namespace demon {

namespace {

// Counts `itemsets` over one block with a prefix tree.
std::vector<uint64_t> CountOver(const std::vector<Itemset>& itemsets,
                                const TransactionBlock& block) {
  PrefixTree tree;
  std::vector<size_t> ids;
  ids.reserve(itemsets.size());
  for (const Itemset& itemset : itemsets) ids.push_back(tree.Insert(itemset));
  for (const Transaction& t : block.transactions()) tree.CountTransaction(t);
  std::vector<uint64_t> counts;
  counts.reserve(itemsets.size());
  for (size_t id : ids) counts.push_back(tree.CountOf(id));
  return counts;
}

uint64_t CeilCount(double minsup, uint64_t n) {
  const double exact = minsup * static_cast<double>(n);
  uint64_t count = static_cast<uint64_t>(exact);
  if (static_cast<double>(count) < exact) ++count;
  return count == 0 ? 1 : count;
}

}  // namespace

FupMaintainer::FupMaintainer(double minsup, size_t num_items)
    : minsup_(minsup), num_items_(num_items), model_(minsup, num_items) {
  DEMON_CHECK(minsup_ > 0.0 && minsup_ < 1.0);
}

void FupMaintainer::AddBlock(std::shared_ptr<const TransactionBlock> block) {
  DEMON_CHECK(block != nullptr);
  last_stats_ = Stats{};
  telemetry::ScopedTimer timer;

  if (blocks_.empty()) {
    blocks_.push_back(std::move(block));
    model_ = Apriori(blocks_, minsup_, num_items_);
    // FUP keeps only the frequent itemsets: drop the border Apriori built.
    std::vector<Itemset> border = model_.NegativeBorder();
    for (const Itemset& itemset : border) {
      model_.mutable_entries()->erase(itemset);
    }
    last_stats_.seconds = timer.Stop();
    return;
  }

  const TransactionBlock& db = *block;
  const uint64_t new_total = model_.num_transactions() + db.size();
  const uint64_t min_count = CeilCount(minsup_, new_total);
  const uint64_t min_count_db = CeilCount(minsup_, db.size());
  auto& entries = *model_.mutable_entries();

  // Old frequent itemsets grouped by size, for the level-wise pass.
  std::vector<std::vector<Itemset>> old_by_size;
  for (const auto& [itemset, entry] : entries) {
    if (old_by_size.size() < itemset.size()) old_by_size.resize(itemset.size());
    old_by_size[itemset.size() - 1].push_back(itemset);
  }

  ItemsetMap<uint64_t> new_counts;   // the updated L under construction
  std::vector<Itemset> level_prev;   // L_{k-1} of the new model

  for (size_t k = 1;; ++k) {
    std::vector<Itemset> winners;

    // (a) Re-validate old frequent k-itemsets with one scan of db.
    if (k <= old_by_size.size() && !old_by_size[k - 1].empty()) {
      const auto& old_level = old_by_size[k - 1];
      const std::vector<uint64_t> db_counts = CountOver(old_level, db);
      for (size_t i = 0; i < old_level.size(); ++i) {
        const uint64_t total = entries[old_level[i]].count + db_counts[i];
        if (total >= min_count) {
          new_counts[old_level[i]] = total;
          winners.push_back(old_level[i]);
        }
      }
    }

    // (b) New candidates from the updated L_{k-1}, minus already-known
    // winners; FUP's pruning lemma: they must be frequent within db.
    std::vector<Itemset> candidates;
    if (k == 1) {
      // New frequent 1-itemsets can only be items frequent in db that
      // were not frequent before.
      for (Item item = 0; item < num_items_; ++item) {
        const Itemset single{item};
        if (new_counts.count(single) == 0 && entries.count(single) == 0) {
          candidates.push_back(single);
        }
      }
    } else {
      auto is_frequent_new = [&new_counts](const Itemset& s) {
        return new_counts.count(s) > 0;
      };
      for (Itemset& candidate :
           GenerateCandidates(level_prev, is_frequent_new)) {
        if (new_counts.count(candidate) == 0 &&
            entries.count(candidate) == 0) {
          candidates.push_back(std::move(candidate));
        }
      }
    }

    if (!candidates.empty()) {
      const std::vector<uint64_t> db_counts = CountOver(candidates, db);
      std::vector<Itemset> survivors;
      std::vector<uint64_t> survivor_db_counts;
      for (size_t i = 0; i < candidates.size(); ++i) {
        if (db_counts[i] >= min_count_db) {
          survivors.push_back(std::move(candidates[i]));
          survivor_db_counts.push_back(db_counts[i]);
        }
      }
      if (!survivors.empty()) {
        // The expensive step FUP is known for: scan the old database.
        ++last_stats_.old_db_scans;
        last_stats_.candidates_counted += survivors.size();
        PrefixTree tree;
        std::vector<size_t> ids;
        for (const Itemset& s : survivors) ids.push_back(tree.Insert(s));
        for (const auto& old_block : blocks_) {
          for (const Transaction& t : old_block->transactions()) {
            tree.CountTransaction(t);
          }
        }
        for (size_t i = 0; i < survivors.size(); ++i) {
          const uint64_t total = tree.CountOf(ids[i]) + survivor_db_counts[i];
          if (total >= min_count) {
            new_counts[survivors[i]] = total;
            winners.push_back(survivors[i]);
          }
        }
      }
    }

    if (winners.empty()) break;
    level_prev = std::move(winners);
  }

  // Install the new model.
  blocks_.push_back(std::move(block));
  ItemsetModel updated(minsup_, num_items_);
  updated.set_num_transactions(new_total);
  for (auto& [itemset, count] : new_counts) {
    updated.mutable_entries()->emplace(itemset,
                                       ItemsetModel::Entry{count, true});
  }
  model_ = std::move(updated);
  last_stats_.seconds = timer.Stop();
}

}  // namespace demon
