#include "itemsets/prefix_tree.h"

#include <algorithm>

#include "common/check.h"

namespace demon {

size_t PrefixTree::Insert(const Itemset& itemset) {
  DEMON_CHECK(!itemset.empty());
  uint32_t node = 0;
  for (Item item : itemset) {
    // Children are kept sorted by item for the merge-style descent.
    auto& children = nodes_[node].children;
    auto it = std::lower_bound(children.begin(), children.end(), item,
                               [this](uint32_t child, Item value) {
                                 return nodes_[child].item < value;
                               });
    if (it != children.end() && nodes_[*it].item == item) {
      node = *it;
      continue;
    }
    const uint32_t fresh = static_cast<uint32_t>(nodes_.size());
    Node child;
    child.item = item;
    // nodes_.push_back may invalidate `children`; recompute the insert
    // position afterwards.
    const size_t insert_at = static_cast<size_t>(it - children.begin());
    nodes_.push_back(child);
    auto& children_after = nodes_[node].children;
    children_after.insert(children_after.begin() + insert_at, fresh);
    node = fresh;
  }
  if (nodes_[node].terminal_id < 0) {
    nodes_[node].terminal_id = static_cast<int32_t>(counts_.size());
    counts_.push_back(0);
  }
  return static_cast<size_t>(nodes_[node].terminal_id);
}

void PrefixTree::CountTransaction(const Transaction& transaction,
                                  uint64_t weight) {
  const auto& items = transaction.items();
  if (items.empty()) return;
  weight_ = weight;
  CountRecursive(0, items.data(), items.data() + items.size());
}

void PrefixTree::CountRecursive(uint32_t node_index, const Item* pos,
                                const Item* end) {
  const Node& node = nodes_[node_index];
  if (node.terminal_id >= 0) counts_[node.terminal_id] += weight_;
  if (node.children.empty() || pos == end) return;

  // Merge-walk the sorted children against the sorted remaining items.
  size_t c = 0;
  const Item* p = pos;
  while (c < node.children.size() && p != end) {
    const Item child_item = nodes_[node.children[c]].item;
    if (child_item < *p) {
      ++c;
    } else if (*p < child_item) {
      ++p;
    } else {
      CountRecursive(node.children[c], p + 1, end);
      ++c;
      ++p;
    }
  }
}

void PrefixTree::ResetCounts() {
  std::fill(counts_.begin(), counts_.end(), 0);
}

void PrefixTree::Clear() {
  nodes_.clear();
  nodes_.push_back(Node{});
  counts_.clear();
}

}  // namespace demon
