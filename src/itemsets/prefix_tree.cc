#include "itemsets/prefix_tree.h"

#include <algorithm>

#include "common/check.h"

namespace demon {

size_t PrefixTree::Insert(const Itemset& itemset) {
  DEMON_CHECK(!itemset.empty());
  uint32_t node = 0;
  for (Item item : itemset) {
    // Children are kept sorted by item for the merge-style descent.
    auto& children = nodes_[node].children;
    auto it = std::lower_bound(children.begin(), children.end(), item,
                               [this](uint32_t child, Item value) {
                                 return nodes_[child].item < value;
                               });
    if (it != children.end() && nodes_[*it].item == item) {
      node = *it;
      continue;
    }
    const uint32_t fresh = static_cast<uint32_t>(nodes_.size());
    Node child;
    child.item = item;
    // nodes_.push_back may invalidate `children`; recompute the insert
    // position afterwards.
    const size_t insert_at = static_cast<size_t>(it - children.begin());
    nodes_.push_back(child);
    auto& children_after = nodes_[node].children;
    children_after.insert(children_after.begin() + insert_at, fresh);
    node = fresh;
  }
  if (nodes_[node].terminal_id < 0) {
    nodes_[node].terminal_id = static_cast<int32_t>(counts_.size());
    counts_.push_back(0);
  }
  return static_cast<size_t>(nodes_[node].terminal_id);
}

void PrefixTree::CountTransaction(const Transaction& transaction,
                                  uint64_t weight) {
  const auto& items = transaction.items();
  if (items.empty()) return;
  weight_ = weight;
  CountRecursive(0, items.data(), items.data() + items.size());
}

void PrefixTree::CountRecursive(uint32_t node_index, const Item* pos,
                                const Item* end) {
  const Node& node = nodes_[node_index];
  if (node.terminal_id >= 0) counts_[node.terminal_id] += weight_;
  if (node.children.empty() || pos == end) return;

  // Merge-walk the sorted children against the sorted remaining items.
  size_t c = 0;
  const Item* p = pos;
  while (c < node.children.size() && p != end) {
    const Item child_item = nodes_[node.children[c]].item;
    if (child_item < *p) {
      ++c;
    } else if (*p < child_item) {
      ++p;
    } else {
      CountRecursive(node.children[c], p + 1, end);
      ++c;
      ++p;
    }
  }
}

void PrefixTree::AuditInto(audit::AuditResult* audit) const {
  constexpr char kModule[] = "prefix-tree";
  if (nodes_.empty()) {
    AUDIT_FAIL(audit, kModule, "prefix-tree/root-missing",
               "node storage is empty (no root)", "");
    return;
  }

  std::vector<bool> reached(nodes_.size(), false);
  std::vector<size_t> terminal_seen(counts_.size(), 0);
  reached[0] = true;
  // Iterative DFS carrying the count of the nearest terminal ancestor
  // (UINT64_MAX before any terminal is passed).
  std::vector<std::pair<uint32_t, uint64_t>> stack;
  stack.push_back({0, UINT64_MAX});
  while (!stack.empty()) {
    const auto [index, ancestor_count] = stack.back();
    stack.pop_back();
    const Node& node = nodes_[index];

    uint64_t passed_down = ancestor_count;
    if (node.terminal_id >= 0) {
      const auto id = static_cast<size_t>(node.terminal_id);
      if (id >= counts_.size()) {
        AUDIT_FAIL(audit, kModule, "prefix-tree/terminal-range",
                   audit::Msg() << "node " << index << " has terminal id "
                                << id << " >= NumItemsets() "
                                << counts_.size(),
                   "");
      } else {
        ++terminal_seen[id];
        AUDIT_CHECK(audit, kModule, "prefix-tree/monotone-counts",
                    counts_[id] <= ancestor_count,
                    audit::Msg()
                        << "terminal " << id << " has count " << counts_[id]
                        << " exceeding its prefix's count " << ancestor_count
                        << " — a subset can never be rarer than its superset",
                    "");
        passed_down = counts_[id];
      }
    }

    for (size_t c = 0; c < node.children.size(); ++c) {
      const uint32_t child = node.children[c];
      if (child <= index || child >= nodes_.size()) {
        AUDIT_FAIL(audit, kModule, "prefix-tree/child-order",
                   audit::Msg() << "node " << index << " has child index "
                                << child
                                << " outside (parent, size) — breaks the "
                                   "append-only acyclic construction",
                   "");
        continue;
      }
      if (reached[child]) {
        AUDIT_FAIL(audit, kModule, "prefix-tree/shared-node",
                   audit::Msg() << "node " << child
                                << " is reachable via two parents",
                   "");
        continue;
      }
      reached[child] = true;
      if (c > 0 && nodes_[node.children[c - 1]].item >= nodes_[child].item) {
        AUDIT_FAIL(audit, kModule, "prefix-tree/children-sorted",
                   audit::Msg()
                       << "node " << index
                       << " children items not strictly increasing at slot "
                       << c,
                   "");
      }
      stack.push_back({child, passed_down});
    }
  }

  for (size_t i = 0; i < reached.size(); ++i) {
    AUDIT_CHECK(audit, kModule, "prefix-tree/orphan-node", reached[i],
                audit::Msg() << "node " << i << " is unreachable from the root",
                "");
  }
  for (size_t id = 0; id < terminal_seen.size(); ++id) {
    AUDIT_CHECK(audit, kModule, "prefix-tree/terminal-dense",
                terminal_seen[id] == 1,
                audit::Msg() << "terminal id " << id << " assigned to "
                             << terminal_seen[id]
                             << " nodes (must be exactly one)",
                "");
  }
}

void PrefixTree::ResetCounts() {
  std::fill(counts_.begin(), counts_.end(), 0);
}

void FlatPrefixTree::BuildFrom(const PrefixTree& tree) {
  const size_t n = tree.nodes_.size();
  item_.resize(n);
  terminal_.resize(n);
  child_begin_.resize(n);
  child_count_.resize(n);
  counts_.assign(tree.counts_.size(), 0);
  bfs_src_.resize(n);
  // Breadth-first relayout. The slot array doubles as the BFS queue:
  // slots are processed in ascending order and each node's children are
  // appended at `next_slot`, which makes every child range contiguous and
  // keeps sibling order (and therefore the strictly-increasing child
  // items) intact. Every node of the source tree is reachable exactly
  // once (append-only construction; audited), so the sweep fills all n
  // slots.
  bfs_src_[0] = 0;
  size_t next_slot = 1;
  for (size_t slot = 0; slot < n; ++slot) {
    const PrefixTree::Node& src = tree.nodes_[bfs_src_[slot]];
    item_[slot] = src.item;
    terminal_[slot] = src.terminal_id;
    child_begin_[slot] = static_cast<uint32_t>(next_slot);
    child_count_[slot] = static_cast<uint32_t>(src.children.size());
    for (const uint32_t child : src.children) {
      bfs_src_[next_slot++] = child;
    }
  }
  DEMON_CHECK_MSG(next_slot == n, "source tree has unreachable nodes");
}

void FlatPrefixTree::CountTransaction(const Transaction& transaction,
                                      uint64_t weight) {
  const auto& items = transaction.items();
  if (items.empty()) return;
  weight_ = weight;
  CountRecursive(0, items.data(), items.data() + items.size());
}

void FlatPrefixTree::CountRecursive(uint32_t node, const Item* pos,
                                    const Item* end) {
  if (terminal_[node] >= 0) counts_[terminal_[node]] += weight_;
  uint32_t c = child_begin_[node];
  const uint32_t cend = c + child_count_[node];
  // Merge-walk the contiguous child slots (items strictly increasing)
  // against the sorted remaining items — same descent as the pointer
  // tree, minus the per-child pointer chase.
  const Item* p = pos;
  while (c < cend && p != end) {
    const Item child_item = item_[c];
    if (child_item < *p) {
      ++c;
    } else if (*p < child_item) {
      ++p;
    } else {
      CountRecursive(c, p + 1, end);
      ++c;
      ++p;
    }
  }
}

void FlatPrefixTree::ResetCounts() {
  std::fill(counts_.begin(), counts_.end(), 0);
}

void PrefixTree::Clear() {
  nodes_.clear();
  nodes_.push_back(Node{});
  counts_.clear();
}

}  // namespace demon
