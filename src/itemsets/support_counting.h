#ifndef DEMON_ITEMSETS_SUPPORT_COUNTING_H_
#define DEMON_ITEMSETS_SUPPORT_COUNTING_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "data/block.h"
#include "itemsets/itemset.h"
#include "tidlist/tidlist_store.h"

namespace demon {

/// How the update phase counts the supports of new candidate itemsets over
/// the accumulated (selected) data — the axis Figures 2 and 4-7 compare.
enum class CountingStrategy {
  /// BORDERS' counting: organize the candidates in a prefix tree and scan
  /// every transaction of the dataset [Mue95].
  kPtScan,
  /// ECUT (paper §3.1.1): intersect the per-block TID-lists of the
  /// candidate's items; only the relevant fraction of the data is read.
  kEcut,
  /// ECUT+ (paper §3.1.1): like ECUT but covers the candidate with
  /// materialized 2-itemset TID-lists where available.
  kEcutPlus,
};

const char* CountingStrategyName(CountingStrategy strategy);

/// \brief Metrics of one counting call, mirroring the paper's analysis of
/// "amount of data fetched".
struct CountingStats {
  /// TID slots (uint32 entries) read from lists, or item occurrences
  /// touched by the scan for PT-Scan.
  uint64_t slots_fetched = 0;
  /// Number of TID-lists opened (0 for PT-Scan).
  uint64_t lists_opened = 0;
};

// The functions below are the sequential convenience API; they run a
// one-shot CountingContext (see itemsets/counting_context.h) without a
// thread pool. Maintainers on the hot path hold a CountingContext instead,
// which reuses scratch buffers across calls and can fan work out over a
// shared ThreadPool with bit-identical results.

/// \brief PT-Scan: counts `itemsets` with one pass over all transactions of
/// `blocks` using a prefix tree. Returns absolute counts, parallel to
/// `itemsets`.
std::vector<uint64_t> PtScanCount(
    const std::vector<Itemset>& itemsets,
    const std::vector<std::shared_ptr<const TransactionBlock>>& blocks,
    CountingStats* stats = nullptr);

/// \brief ECUT / ECUT+: counts `itemsets` by intersecting per-block
/// TID-lists from `store`. With `use_pair_lists`, each itemset is first
/// greedily covered by materialized 2-itemset lists (smallest lists first),
/// falling back to item lists for uncovered items — the ECUT+ counting rule.
std::vector<uint64_t> EcutCount(const std::vector<Itemset>& itemsets,
                                const TidListStore& store,
                                bool use_pair_lists,
                                CountingStats* stats = nullptr);

/// \brief Dispatches on `strategy`. PT-Scan uses `blocks`; ECUT variants
/// use `store`.
std::vector<uint64_t> CountSupports(
    CountingStrategy strategy, const std::vector<Itemset>& itemsets,
    const std::vector<std::shared_ptr<const TransactionBlock>>& blocks,
    const TidListStore& store, CountingStats* stats = nullptr);

}  // namespace demon

#endif  // DEMON_ITEMSETS_SUPPORT_COUNTING_H_
