#ifndef DEMON_ITEMSETS_MODEL_IO_H_
#define DEMON_ITEMSETS_MODEL_IO_H_

#include <string>

#include "common/status.h"
#include "itemsets/itemset_model.h"
#include "persistence/serializer.h"

namespace demon {

/// \brief Binary serialization of an ItemsetModel (frequent itemsets and
/// negative border with counts, threshold, universe, transaction count).
///
/// §3.2.3's point about GEMM: of the w maintained models only the current
/// one is needed in memory; the rest "can be stored on disk and retrieved
/// when necessary", and a model is tiny next to the block data. These
/// functions provide that spill/restore path and round-trip exactly. Files
/// carry the shared persistence::FileHeader (format kItemsetModel);
/// corrupted or truncated input is rejected with InvalidArgument/DataLoss.
[[nodiscard]] Status WriteItemsetModel(const ItemsetModel& model, const std::string& path);

[[nodiscard]] Result<ItemsetModel> ReadItemsetModel(const std::string& path);

/// Appends the model payload (no file header) to `w`. Entries are emitted
/// in canonical lexicographic order, so equal models serialize to equal
/// bytes. Shared by the model file writer and the checkpoint container.
void SerializeItemsetModel(persistence::Writer& w, const ItemsetModel& model);

/// Decodes a model payload written by SerializeItemsetModel. Corruption
/// latches a DataLoss on `r`; `model` is only valid when `r.ok()` holds
/// afterwards.
void DeserializeItemsetModel(persistence::Reader& r, ItemsetModel* model);

/// Serialized size of a model file in bytes, without writing it (what
/// §3.2.3 calls the "negligible" additional disk space for the w - 1
/// models). Kept consistent with the writer by construction — see the
/// predicted-vs-written assertions in model_io_test.
uint64_t SerializedModelBytes(const ItemsetModel& model);

}  // namespace demon

#endif  // DEMON_ITEMSETS_MODEL_IO_H_
