#ifndef DEMON_ITEMSETS_MODEL_IO_H_
#define DEMON_ITEMSETS_MODEL_IO_H_

#include <string>

#include "common/status.h"
#include "itemsets/itemset_model.h"

namespace demon {

/// \brief Binary serialization of an ItemsetModel (frequent itemsets and
/// negative border with counts, threshold, universe, transaction count).
///
/// §3.2.3's point about GEMM: of the w maintained models only the current
/// one is needed in memory; the rest "can be stored on disk and retrieved
/// when necessary", and a model is tiny next to the block data. These
/// functions provide that spill/restore path and round-trip exactly.
[[nodiscard]] Status WriteItemsetModel(const ItemsetModel& model, const std::string& path);

[[nodiscard]] Result<ItemsetModel> ReadItemsetModel(const std::string& path);

/// Serialized size of a model in bytes, without writing it (what §3.2.3
/// calls the "negligible" additional disk space for the w - 1 models).
uint64_t SerializedModelBytes(const ItemsetModel& model);

}  // namespace demon

#endif  // DEMON_ITEMSETS_MODEL_IO_H_
