#include "itemsets/apriori.h"

#include <algorithm>

#include "common/check.h"
#include "itemsets/candidate_generation.h"
#include "itemsets/prefix_tree.h"

namespace demon {

ItemsetModel Apriori(
    const std::vector<std::shared_ptr<const TransactionBlock>>& blocks,
    double minsup, size_t num_items) {
  ItemsetModel model(minsup, num_items);
  uint64_t num_transactions = 0;
  for (const auto& block : blocks) num_transactions += block->size();
  model.set_num_transactions(num_transactions);
  const uint64_t min_count = model.MinCount();
  auto& entries = *model.mutable_entries();

  // Level 1: count every item with a dense array (cheaper than the tree).
  std::vector<uint64_t> item_counts(num_items, 0);
  for (const auto& block : blocks) {
    for (const Transaction& t : block->transactions()) {
      for (Item item : t.items()) {
        DEMON_CHECK_MSG(item < num_items, "item outside universe");
        ++item_counts[item];
      }
    }
  }
  std::vector<Itemset> frequent_prev;
  for (Item item = 0; item < num_items; ++item) {
    const bool frequent = item_counts[item] >= min_count;
    entries.emplace(Itemset{item},
                    ItemsetModel::Entry{item_counts[item], frequent});
    if (frequent) frequent_prev.push_back(Itemset{item});
  }

  // Levels k >= 2: generate, count with one scan, split into L_k / border.
  auto is_frequent = [&entries](const Itemset& itemset) {
    const auto it = entries.find(itemset);
    return it != entries.end() && it->second.frequent;
  };
  while (!frequent_prev.empty()) {
    std::vector<Itemset> candidates =
        GenerateCandidates(std::move(frequent_prev), is_frequent);
    frequent_prev.clear();
    if (candidates.empty()) break;

    PrefixTree tree;
    std::vector<size_t> ids;
    ids.reserve(candidates.size());
    for (const Itemset& c : candidates) ids.push_back(tree.Insert(c));
    tree.CountBlocks(blocks);

    for (size_t i = 0; i < candidates.size(); ++i) {
      const uint64_t count = tree.CountOf(ids[i]);
      const bool frequent = count >= min_count;
      entries.emplace(candidates[i], ItemsetModel::Entry{count, frequent});
      if (frequent) frequent_prev.push_back(std::move(candidates[i]));
    }
  }
  return model;
}

ItemsetModel AprioriOnBlock(const TransactionBlock& block, double minsup,
                            size_t num_items) {
  // Wrap the block in a non-owning shared_ptr: Apriori only reads it.
  auto alias = std::shared_ptr<const TransactionBlock>(
      std::shared_ptr<const TransactionBlock>(), &block);
  return Apriori({alias}, minsup, num_items);
}

}  // namespace demon
