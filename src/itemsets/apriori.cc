#include "itemsets/apriori.h"

#include <algorithm>

#include "common/check.h"
#include "itemsets/candidate_generation.h"
#include "itemsets/counting_context.h"

namespace demon {

ItemsetModel Apriori(
    const std::vector<std::shared_ptr<const TransactionBlock>>& blocks,
    double minsup, size_t num_items, CountingContext* context) {
  CountingContext local_context;
  if (context == nullptr) context = &local_context;

  ItemsetModel model(minsup, num_items);
  uint64_t num_transactions = 0;
  for (const auto& block : blocks) num_transactions += block->size();
  model.set_num_transactions(num_transactions);
  const uint64_t min_count = model.MinCount();
  auto& entries = *model.mutable_entries();

  // Level 1: count every item with a dense array (cheaper than the tree).
  const std::vector<uint64_t> item_counts =
      context->CountItems(blocks, num_items);
  std::vector<Itemset> frequent_prev;
  for (Item item = 0; item < num_items; ++item) {
    const bool frequent = item_counts[item] >= min_count;
    entries.emplace(Itemset{item},
                    ItemsetModel::Entry{item_counts[item], frequent});
    if (frequent) frequent_prev.push_back(Itemset{item});
  }

  // Levels k >= 2: generate, count with one scan, split into L_k / border.
  auto is_frequent = [&entries](const Itemset& itemset) {
    const auto it = entries.find(itemset);
    return it != entries.end() && it->second.frequent;
  };
  while (!frequent_prev.empty()) {
    std::vector<Itemset> candidates =
        GenerateCandidates(std::move(frequent_prev), is_frequent);
    frequent_prev.clear();
    if (candidates.empty()) break;

    const std::vector<uint64_t> counts = context->PtScan(candidates, blocks);
    for (size_t i = 0; i < candidates.size(); ++i) {
      const bool frequent = counts[i] >= min_count;
      entries.emplace(candidates[i], ItemsetModel::Entry{counts[i], frequent});
      if (frequent) frequent_prev.push_back(std::move(candidates[i]));
    }
  }
  return model;
}

ItemsetModel AprioriOnBlock(const TransactionBlock& block, double minsup,
                            size_t num_items) {
  // Wrap the block in a non-owning shared_ptr: Apriori only reads it.
  auto alias = std::shared_ptr<const TransactionBlock>(
      std::shared_ptr<const TransactionBlock>(), &block);
  return Apriori({alias}, minsup, num_items);
}

}  // namespace demon
