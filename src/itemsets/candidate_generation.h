#ifndef DEMON_ITEMSETS_CANDIDATE_GENERATION_H_
#define DEMON_ITEMSETS_CANDIDATE_GENERATION_H_

#include <vector>

#include "itemsets/itemset.h"

namespace demon {

/// \brief Apriori candidate generation [AMS+96]: joins the (k-1)-itemsets
/// in `frequent_prev` pairwise on their common (k-2)-prefix and prunes
/// candidates that have an infrequent (k-1)-subset.
///
/// `frequent_prev` must contain sorted itemsets all of the same size k-1
/// (k >= 2). `is_frequent` answers membership of (k-1)-itemsets in the
/// frequent set (typically a closure over an ItemsetSet or ItemsetModel).
/// The result is in lexicographic order without duplicates.
template <typename FrequentPredicate>
std::vector<Itemset> GenerateCandidates(std::vector<Itemset> frequent_prev,
                                        FrequentPredicate is_frequent) {
  std::vector<Itemset> candidates;
  if (frequent_prev.empty()) return candidates;
  std::sort(frequent_prev.begin(), frequent_prev.end(), ItemsetLess());

  const size_t k_minus_1 = frequent_prev[0].size();
  // Join step: pairs sharing the first k-2 items.
  for (size_t i = 0; i < frequent_prev.size(); ++i) {
    for (size_t j = i + 1; j < frequent_prev.size(); ++j) {
      const Itemset& a = frequent_prev[i];
      const Itemset& b = frequent_prev[j];
      if (!std::equal(a.begin(), a.end() - 1, b.begin())) break;
      Itemset candidate = a;
      candidate.push_back(b.back());

      // Prune step: every (k-1)-subset must be frequent. Subsets formed by
      // dropping the last two positions are `a` and `b` themselves.
      bool keep = true;
      for (size_t drop = 0; drop + 2 < candidate.size() && keep; ++drop) {
        keep = is_frequent(WithoutIndex(candidate, drop));
      }
      if (keep) candidates.push_back(std::move(candidate));
    }
  }
  (void)k_minus_1;
  return candidates;
}

/// \brief All 2-candidates from frequent 1-itemsets (every pair qualifies).
std::vector<Itemset> GeneratePairCandidates(
    const std::vector<Item>& frequent_items);

}  // namespace demon

#endif  // DEMON_ITEMSETS_CANDIDATE_GENERATION_H_
