#ifndef DEMON_DATA_SNAPSHOT_H_
#define DEMON_DATA_SNAPSHOT_H_

#include <memory>
#include <utility>
#include <vector>

#include "common/check.h"
#include "data/block.h"
#include "data/types.h"

namespace demon {

/// \brief The current database snapshot D[1, t]: an ordered sequence of
/// immutable blocks (paper §2.1). Blocks are appended with increasing ids
/// starting at 1; `Drop` removes the oldest blocks (used when modelling a
/// bounded store for the most-recent-window option).
///
/// Blocks are held by shared_ptr so that windows, TID-list stores, and
/// maintained models can retain the blocks they were built from without
/// copying the data.
template <typename BlockT>
class Snapshot {
 public:
  using BlockPtr = std::shared_ptr<const BlockT>;

  Snapshot() = default;

  /// Appends a block; assigns and returns its id (1-based, increasing).
  BlockId Append(BlockT block) {
    auto ptr = std::make_shared<BlockT>(std::move(block));
    const BlockId id = next_id_++;
    ptr->mutable_info()->id = id;
    blocks_.push_back(std::move(ptr));
    return id;
  }

  /// Appends an already-shared block (its BlockInfo id is left untouched if
  /// already set to the next id, otherwise checked).
  BlockId Append(BlockPtr block) {
    DEMON_CHECK(block != nullptr);
    const BlockId id = next_id_++;
    DEMON_CHECK_MSG(block->info().id == id || block->info().id == kInvalidBlockId,
                    "appended block carries a conflicting id");
    blocks_.push_back(std::move(block));
    return id;
  }

  /// Number of blocks currently held (after drops this can be less than
  /// latest_id()).
  size_t NumBlocks() const { return blocks_.size(); }
  bool empty() const { return blocks_.empty(); }

  /// Identifier of the most recently appended block (0 if none).
  BlockId latest_id() const { return next_id_ - 1; }

  /// Identifier of the oldest retained block (0 if none retained).
  BlockId oldest_id() const {
    return blocks_.empty() ? kInvalidBlockId
                           : static_cast<BlockId>(next_id_ - blocks_.size());
  }

  /// The block with identifier `id`. Requires oldest_id() <= id <= latest_id().
  const BlockPtr& block(BlockId id) const {
    DEMON_CHECK(id >= oldest_id() && id <= latest_id());
    return blocks_[id - oldest_id()];
  }

  /// All retained blocks in id order.
  const std::vector<BlockPtr>& blocks() const { return blocks_; }

  /// Drops the `count` oldest retained blocks.
  void Drop(size_t count) {
    DEMON_CHECK(count <= blocks_.size());
    blocks_.erase(blocks_.begin(), blocks_.begin() + count);
  }

  /// Blocks of the most recent window of size w: D[t-w+1, t] (or all blocks
  /// if fewer than w exist; paper §2.2 assumes t >= w but defines this case).
  std::vector<BlockPtr> MostRecentWindow(size_t w) const {
    const size_t n = blocks_.size();
    const size_t take = w < n ? w : n;
    return std::vector<BlockPtr>(blocks_.end() - take, blocks_.end());
  }

  /// Total number of records across retained blocks.
  size_t TotalRecords() const {
    size_t total = 0;
    for (const auto& b : blocks_) total += b->size();
    return total;
  }

 private:
  std::vector<BlockPtr> blocks_;
  BlockId next_id_ = 1;
};

using TransactionSnapshot = Snapshot<TransactionBlock>;
using PointSnapshot = Snapshot<PointBlock>;

}  // namespace demon

#endif  // DEMON_DATA_SNAPSHOT_H_
