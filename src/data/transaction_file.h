#ifndef DEMON_DATA_TRANSACTION_FILE_H_
#define DEMON_DATA_TRANSACTION_FILE_H_

#include <cstdio>
#include <memory>
#include <string>

#include "common/status.h"
#include "data/block.h"

namespace demon {

/// \brief Sequential on-disk format for a transaction block: the layout a
/// full scan (PT-Scan) streams through. Together with TidListFile this
/// models the paper's storage choices — transactional format for scans,
/// TID-lists as the alternative representation (§3.1.1 argues the lists
/// can replace it outright).
class TransactionFile {
 public:
  /// Writes the block's transactions (items only; TIDs are implicit).
  [[nodiscard]] static Status Write(const TransactionBlock& block, const std::string& path);

  /// Reads the whole file back into a block with the given first TID.
  [[nodiscard]] static Result<TransactionBlock> Read(const std::string& path,
                                       Tid first_tid = 0);
};

/// \brief Streaming reader over a TransactionFile: visits each
/// transaction without materializing the block, tracking bytes read.
class TransactionFileScanner {
 public:
  ~TransactionFileScanner();

  TransactionFileScanner(const TransactionFileScanner&) = delete;
  TransactionFileScanner& operator=(const TransactionFileScanner&) = delete;

  [[nodiscard]] static Result<std::unique_ptr<TransactionFileScanner>> Open(
      const std::string& path);

  /// Calls `fn(transaction)` for every transaction, in file order. May be
  /// called repeatedly (rewinds first).
  template <typename Fn>
  [[nodiscard]] Status Scan(Fn&& fn) {
    DEMON_RETURN_NOT_OK(Rewind());
    Transaction transaction;
    for (;;) {
      DEMON_ASSIGN_OR_RETURN(const bool more, Next(&transaction));
      if (!more) break;
      fn(transaction);
    }
    return Status::OK();
  }

  size_t num_transactions() const { return num_transactions_; }
  uint64_t bytes_read() const { return bytes_read_; }

 private:
  TransactionFileScanner() = default;

  [[nodiscard]] Status Rewind();
  /// Reads the next transaction; false when the file is exhausted.
  [[nodiscard]] Result<bool> Next(Transaction* out);

  std::FILE* file_ = nullptr;
  size_t num_transactions_ = 0;
  size_t position_ = 0;
  uint64_t bytes_read_ = 0;
  long file_bytes_ = 0;
};

}  // namespace demon

#endif  // DEMON_DATA_TRANSACTION_FILE_H_
