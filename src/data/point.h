#ifndef DEMON_DATA_POINT_H_
#define DEMON_DATA_POINT_H_

#include <cmath>
#include <vector>

#include "common/check.h"

namespace demon {

/// A d-dimensional point. Kept as a plain vector: the clustering substrate
/// stores bulk data in flat PointBlock arrays, and `Point` is only used at
/// API boundaries (centroids, generator output).
using Point = std::vector<double>;

/// \brief Squared Euclidean distance between two points of dimension `dim`
/// given as raw coordinate arrays.
inline double SquaredDistance(const double* a, const double* b, size_t dim) {
  double sum = 0.0;
  for (size_t i = 0; i < dim; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

/// \brief Squared Euclidean distance between two points.
inline double SquaredDistance(const Point& a, const Point& b) {
  DEMON_CHECK(a.size() == b.size());
  return SquaredDistance(a.data(), b.data(), a.size());
}

/// \brief Euclidean distance between two points.
inline double Distance(const Point& a, const Point& b) {
  return std::sqrt(SquaredDistance(a, b));
}

}  // namespace demon

#endif  // DEMON_DATA_POINT_H_
