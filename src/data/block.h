#ifndef DEMON_DATA_BLOCK_H_
#define DEMON_DATA_BLOCK_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "data/point.h"
#include "data/transaction.h"
#include "data/types.h"

namespace demon {

/// \brief Descriptive metadata attached to a block: its position in the
/// evolving database plus the (application-level) time interval it spans.
/// The trace experiments (paper §5.3) label blocks with wall-clock windows
/// like "[8AM-12PM] Mon 9-9-1996"; other workloads leave times at zero.
struct BlockInfo {
  BlockId id = kInvalidBlockId;
  /// Inclusive start / exclusive end of the time interval covered, in
  /// seconds since an application-defined epoch.
  int64_t start_time = 0;
  int64_t end_time = 0;
  /// Free-form label used in experiment output (e.g. "Mon 12:00-18:00").
  std::string label;
};

/// \brief A block of market-basket transactions — the unit of systematic
/// evolution (paper §2.1). Immutable once constructed.
///
/// TIDs are implicit and globally increasing: the k-th transaction has TID
/// `first_tid() + k`. This keeps per-block TID-lists sorted and lets the
/// additivity property of §3.1.1 hold by construction.
class TransactionBlock {
 public:
  TransactionBlock() = default;

  TransactionBlock(std::vector<Transaction> transactions, Tid first_tid)
      : transactions_(std::move(transactions)), first_tid_(first_tid) {}

  const std::vector<Transaction>& transactions() const {
    return transactions_;
  }
  size_t size() const { return transactions_.size(); }
  bool empty() const { return transactions_.empty(); }

  Tid first_tid() const { return first_tid_; }
  /// TID of the k-th transaction in this block.
  Tid TidAt(size_t k) const {
    DEMON_CHECK(k < transactions_.size());
    return first_tid_ + k;
  }

  const BlockInfo& info() const { return info_; }
  BlockInfo* mutable_info() { return &info_; }

  /// Total number of item occurrences, i.e. the size of the block stored in
  /// transactional format (unit: item slots). The TID-list representation
  /// of the block occupies exactly the same number of slots (paper §3.1.1).
  size_t TotalItemOccurrences() const {
    size_t total = 0;
    for (const Transaction& t : transactions_) total += t.size();
    return total;
  }

 private:
  std::vector<Transaction> transactions_;
  Tid first_tid_ = 0;
  BlockInfo info_;
};

/// \brief A block of d-dimensional points for the clustering experiments.
/// Points are stored row-major in a flat array. Immutable once constructed.
class PointBlock {
 public:
  PointBlock() = default;

  PointBlock(std::vector<double> coords, size_t dim)
      : coords_(std::move(coords)), dim_(dim) {
    DEMON_CHECK(dim_ > 0);
    DEMON_CHECK(coords_.size() % dim_ == 0);
  }

  /// Builds a block from individual points (all must share `dim`).
  static PointBlock FromPoints(const std::vector<Point>& points, size_t dim) {
    std::vector<double> coords;
    coords.reserve(points.size() * dim);
    for (const Point& p : points) {
      DEMON_CHECK(p.size() == dim);
      coords.insert(coords.end(), p.begin(), p.end());
    }
    return PointBlock(std::move(coords), dim);
  }

  size_t size() const { return dim_ == 0 ? 0 : coords_.size() / dim_; }
  bool empty() const { return coords_.empty(); }
  size_t dim() const { return dim_; }

  /// Pointer to the coordinates of the k-th point (dim() doubles).
  const double* PointAt(size_t k) const {
    DEMON_CHECK(k < size());
    return coords_.data() + k * dim_;
  }

  const std::vector<double>& coords() const { return coords_; }

  const BlockInfo& info() const { return info_; }
  BlockInfo* mutable_info() { return &info_; }

 private:
  std::vector<double> coords_;
  size_t dim_ = 0;
  BlockInfo info_;
};

}  // namespace demon

#endif  // DEMON_DATA_BLOCK_H_
