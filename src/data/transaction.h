#ifndef DEMON_DATA_TRANSACTION_H_
#define DEMON_DATA_TRANSACTION_H_

#include <algorithm>
#include <initializer_list>
#include <utility>
#include <vector>

#include "data/types.h"

namespace demon {

/// \brief A market-basket transaction: a sorted, duplicate-free set of
/// items. The transaction's TID is implicit: a transaction stored at offset
/// `k` of a block with first TID `f` has TID `f + k`.
class Transaction {
 public:
  Transaction() = default;

  /// Takes ownership of `items`, sorting and deduplicating them.
  explicit Transaction(std::vector<Item> items) : items_(std::move(items)) {
    Normalize();
  }

  Transaction(std::initializer_list<Item> items)
      : Transaction(std::vector<Item>(items)) {}

  const std::vector<Item>& items() const { return items_; }
  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  /// True if this transaction contains item `x` (binary search).
  bool Contains(Item x) const {
    return std::binary_search(items_.begin(), items_.end(), x);
  }

  /// True if this transaction contains every item of the sorted range
  /// [first, last) — i.e. the transaction supports that itemset.
  template <typename It>
  bool ContainsAll(It first, It last) const {
    auto pos = items_.begin();
    for (; first != last; ++first) {
      pos = std::lower_bound(pos, items_.end(), *first);
      if (pos == items_.end() || *pos != *first) return false;
      ++pos;
    }
    return true;
  }

  bool operator==(const Transaction& other) const {
    return items_ == other.items_;
  }

 private:
  void Normalize() {
    std::sort(items_.begin(), items_.end());
    items_.erase(std::unique(items_.begin(), items_.end()), items_.end());
  }

  std::vector<Item> items_;
};

}  // namespace demon

#endif  // DEMON_DATA_TRANSACTION_H_
