#include "data/transaction_file.h"

#include "persistence/file_header.h"

namespace demon {

namespace {

constexpr uint32_t kTransactionFileVersion = 1;
constexpr long kPayloadStart =
    static_cast<long>(persistence::FileHeader::kBytes) +
    static_cast<long>(sizeof(uint64_t));

}  // namespace

Status TransactionFile::Write(const TransactionBlock& block,
                              const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open for write: " + path);
  persistence::FileHeader header;
  header.format_id =
      static_cast<uint32_t>(persistence::FormatId::kTransactionFile);
  header.version = kTransactionFileVersion;
  Status status = header.WriteTo(f);
  const uint64_t count = block.size();
  bool ok = status.ok() && std::fwrite(&count, sizeof(count), 1, f) == 1;
  for (const Transaction& t : block.transactions()) {
    if (!ok) break;
    const uint32_t length = static_cast<uint32_t>(t.size());
    ok = std::fwrite(&length, sizeof(length), 1, f) == 1 &&
         (length == 0 ||
          std::fwrite(t.items().data(), sizeof(Item), length, f) == length);
  }
  std::fclose(f);
  if (!status.ok()) return status;
  if (!ok) return Status::IoError("short write: " + path);
  return Status::OK();
}

Result<TransactionBlock> TransactionFile::Read(const std::string& path,
                                               Tid first_tid) {
  DEMON_ASSIGN_OR_RETURN(auto scanner, TransactionFileScanner::Open(path));
  std::vector<Transaction> transactions;
  transactions.reserve(scanner->num_transactions());
  DEMON_RETURN_NOT_OK(scanner->Scan(
      [&transactions](const Transaction& t) { transactions.push_back(t); }));
  return TransactionBlock(std::move(transactions), first_tid);
}

TransactionFileScanner::~TransactionFileScanner() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::unique_ptr<TransactionFileScanner>> TransactionFileScanner::Open(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open for read: " + path);
  auto scanner = std::unique_ptr<TransactionFileScanner>(
      new TransactionFileScanner());
  scanner->file_ = f;
  auto header = persistence::FileHeader::ReadFrom(
      f, persistence::FormatId::kTransactionFile, kTransactionFileVersion,
      path);
  if (!header.ok()) return header.status();
  uint64_t count = 0;
  if (std::fread(&count, sizeof(count), 1, f) != 1) {
    return Status::DataLoss("transaction file truncated in header: " + path);
  }
  std::fseek(f, 0, SEEK_END);
  scanner->file_bytes_ = std::ftell(f);
  std::fseek(f, kPayloadStart, SEEK_SET);
  scanner->num_transactions_ = count;
  scanner->position_ = 0;
  return scanner;
}

Status TransactionFileScanner::Rewind() {
  if (std::fseek(file_, kPayloadStart, SEEK_SET) != 0) {
    return Status::IoError("seek failed");
  }
  position_ = 0;
  return Status::OK();
}

Result<bool> TransactionFileScanner::Next(Transaction* out) {
  if (position_ >= num_transactions_) return false;
  uint32_t length = 0;
  if (std::fread(&length, sizeof(length), 1, file_) != 1) {
    return Status::DataLoss("transaction file truncated (length)");
  }
  // Reject lengths that cannot fit in the file before allocating: a corrupt
  // length field must not force a multi-gigabyte resize.
  if (static_cast<uint64_t>(length) * sizeof(Item) >
      static_cast<uint64_t>(file_bytes_)) {
    return Status::DataLoss("transaction length exceeds file size");
  }
  std::vector<Item> items(length);
  if (length > 0 &&
      std::fread(items.data(), sizeof(Item), length, file_) != length) {
    return Status::DataLoss("transaction file truncated (items)");
  }
  bytes_read_ += sizeof(length) + length * sizeof(Item);
  *out = Transaction(std::move(items));
  ++position_;
  return true;
}

}  // namespace demon
