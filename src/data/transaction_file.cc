#include "data/transaction_file.h"

namespace demon {

namespace {

constexpr uint64_t kMagic = 0x44454d4f4e545831ULL;  // "DEMONTX1"

}  // namespace

Status TransactionFile::Write(const TransactionBlock& block,
                              const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open for write: " + path);
  const uint64_t count = block.size();
  bool ok = std::fwrite(&kMagic, sizeof(kMagic), 1, f) == 1 &&
            std::fwrite(&count, sizeof(count), 1, f) == 1;
  for (const Transaction& t : block.transactions()) {
    if (!ok) break;
    const uint32_t length = static_cast<uint32_t>(t.size());
    ok = std::fwrite(&length, sizeof(length), 1, f) == 1 &&
         (length == 0 ||
          std::fwrite(t.items().data(), sizeof(Item), length, f) == length);
  }
  std::fclose(f);
  if (!ok) return Status::IoError("short write: " + path);
  return Status::OK();
}

Result<TransactionBlock> TransactionFile::Read(const std::string& path,
                                               Tid first_tid) {
  DEMON_ASSIGN_OR_RETURN(auto scanner, TransactionFileScanner::Open(path));
  std::vector<Transaction> transactions;
  transactions.reserve(scanner->num_transactions());
  DEMON_RETURN_NOT_OK(scanner->Scan(
      [&transactions](const Transaction& t) { transactions.push_back(t); }));
  return TransactionBlock(std::move(transactions), first_tid);
}

TransactionFileScanner::~TransactionFileScanner() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::unique_ptr<TransactionFileScanner>> TransactionFileScanner::Open(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open for read: " + path);
  auto scanner = std::unique_ptr<TransactionFileScanner>(
      new TransactionFileScanner());
  scanner->file_ = f;
  uint64_t magic = 0;
  uint64_t count = 0;
  if (std::fread(&magic, sizeof(magic), 1, f) != 1 || magic != kMagic ||
      std::fread(&count, sizeof(count), 1, f) != 1) {
    return Status::IoError("corrupt transaction file: " + path);
  }
  scanner->num_transactions_ = count;
  scanner->position_ = 0;
  return scanner;
}

Status TransactionFileScanner::Rewind() {
  if (std::fseek(file_, 2 * sizeof(uint64_t), SEEK_SET) != 0) {
    return Status::IoError("seek failed");
  }
  position_ = 0;
  return Status::OK();
}

Result<bool> TransactionFileScanner::Next(Transaction* out) {
  if (position_ >= num_transactions_) return false;
  uint32_t length = 0;
  if (std::fread(&length, sizeof(length), 1, file_) != 1) {
    return Status::IoError("short read (length)");
  }
  std::vector<Item> items(length);
  if (length > 0 &&
      std::fread(items.data(), sizeof(Item), length, file_) != length) {
    return Status::IoError("short read (items)");
  }
  bytes_read_ += sizeof(length) + length * sizeof(Item);
  *out = Transaction(std::move(items));
  ++position_;
  return true;
}

}  // namespace demon
