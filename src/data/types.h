#ifndef DEMON_DATA_TYPES_H_
#define DEMON_DATA_TYPES_H_

#include <cstdint>

namespace demon {

/// An item literal (paper §3: I = {i1, ..., in}). Items are dense integers
/// in [0, num_items).
using Item = uint32_t;

/// A transaction identifier. TIDs increase in arrival order across the
/// whole database (paper §3.1.1), so per-block TID-lists stay sorted.
using Tid = uint64_t;

/// Identifier of a block in a systematically evolving database (paper
/// §2.1). Blocks are numbered 1, 2, ... in arrival order; 0 is reserved as
/// an invalid id.
using BlockId = uint32_t;

inline constexpr BlockId kInvalidBlockId = 0;

}  // namespace demon

#endif  // DEMON_DATA_TYPES_H_
