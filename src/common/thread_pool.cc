#include "common/thread_pool.h"

#include <utility>

#include "common/check.h"

namespace demon {

ThreadPool::ThreadPool(size_t num_threads) {
  DEMON_CHECK_MSG(num_threads >= 1, "ThreadPool needs at least one worker");
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return in_flight_ == 0; });
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  DEMON_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    DEMON_CHECK_MSG(!stopping_, "Submit on a stopping ThreadPool");
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace demon
