#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

#include "common/check.h"

namespace demon {

namespace {

/// The pool whose WorkerLoop owns this thread, if any. A raw pointer is
/// safe: it is only ever compared against `this` by InWorker, and the
/// thread dies (with its thread_local) before the pool finishes joining.
thread_local const ThreadPool* t_worker_pool = nullptr;

}  // namespace

bool ThreadPool::InWorker() const { return t_worker_pool == this; }

ThreadPool::ThreadPool(size_t num_threads) : tokens_(num_threads) {
  DEMON_CHECK_MSG(num_threads >= 1, "ThreadPool needs at least one worker");
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

size_t ThreadPool::TryAcquireTokens(size_t want) {
  if (want == 0) return 0;
  size_t available = tokens_.load(std::memory_order_relaxed);
  for (;;) {
    if (available == 0) return 0;
    const size_t take = want < available ? want : available;
    if (tokens_.compare_exchange_weak(available, available - take,
                                      std::memory_order_acquire,
                                      std::memory_order_relaxed)) {
      return take;
    }
  }
}

void ThreadPool::ReleaseTokens(size_t n) {
  if (n == 0) return;
  const size_t prev = tokens_.fetch_add(n, std::memory_order_release);
  DEMON_CHECK_MSG(prev + n <= workers_.size(),
                  "more tokens released than the pool owns");
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    while (in_flight_ != 0) idle_.Wait(mutex_);
    stopping_ = true;
  }
  work_available_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  DEMON_CHECK(task != nullptr);
  {
    MutexLock lock(mutex_);
    DEMON_CHECK_MSG(!stopping_, "Submit on a stopping ThreadPool");
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.NotifyOne();
}

void ThreadPool::WaitIdle() {
  MutexLock lock(mutex_);
  while (in_flight_ != 0) idle_.Wait(mutex_);
}

void ThreadPool::WorkerLoop() {
  t_worker_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) work_available_.Wait(mutex_);
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      MutexLock lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) idle_.NotifyAll();
    }
  }
}

namespace {

/// Shared state of one ParallelFor call. Held by shared_ptr because helper
/// tasks can be dequeued after the call has returned (when the caller
/// claimed every index itself); such stragglers see `next >= n` and exit
/// without touching `body`.
struct ParallelForState {
  explicit ParallelForState(size_t n_in,
                            const std::function<void(size_t)>* body_in)
      : n(n_in), body(body_in) {}

  const size_t n;
  /// Owned by the caller's frame; only dereferenced for claimed indices,
  /// all of which complete before the caller returns.
  const std::function<void(size_t)>* const body;
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  /// Leaf lock (nothing is acquired under it): it only serializes the
  /// final notify against the caller's wait — `done` itself is atomic.
  Mutex mutex;
  CondVar all_done;
};

void ClaimLoop(const std::shared_ptr<ParallelForState>& state) {
  for (;;) {
    const size_t i = state->next.fetch_add(1);
    if (i >= state->n) return;
    (*state->body)(i);
    if (state->done.fetch_add(1) + 1 == state->n) {
      MutexLock lock(state->mutex);
      state->all_done.NotifyAll();
    }
  }
}

}  // namespace

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& body) {
  if (n == 0) return;
  if (pool == nullptr || n == 1 || pool->num_threads() <= 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  // Borrow one token per helper; a helper returns its token the moment its
  // claim loop runs dry. Zero tokens (outer layers hold the whole budget)
  // degrades to the caller claiming every index itself — serial, but on a
  // thread that was already committed to this work.
  const size_t helpers =
      pool->TryAcquireTokens(std::min(n - 1, pool->num_threads()));
  if (helpers == 0) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  auto state = std::make_shared<ParallelForState>(n, &body);
  for (size_t h = 0; h < helpers; ++h) {
    pool->Submit([pool, state] {
      ClaimLoop(state);
      pool->ReleaseTokens(1);
    });
  }
  ClaimLoop(state);
  MutexLock lock(state->mutex);
  while (state->done.load() != state->n) state->all_done.Wait(state->mutex);
}

}  // namespace demon
