#ifndef DEMON_COMMON_CHECK_H_
#define DEMON_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

#include "common/status.h"

namespace demon::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr, const char* msg) {
  std::fprintf(stderr, "DEMON_CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, (msg != nullptr && msg[0] != '\0') ? " — " : "",
               msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace demon::internal

/// Aborts with a diagnostic if `cond` is false. For programming errors
/// (invariant violations), not recoverable conditions.
#define DEMON_CHECK(cond)                                              \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::demon::internal::CheckFailed(__FILE__, __LINE__, #cond, "");   \
    }                                                                  \
  } while (false)

#define DEMON_CHECK_MSG(cond, msg)                                     \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::demon::internal::CheckFailed(__FILE__, __LINE__, #cond, msg);  \
    }                                                                  \
  } while (false)

/// Aborts if a Status-returning expression fails. For examples/benchmarks
/// where recovery is pointless.
#define DEMON_CHECK_OK(expr)                                              \
  do {                                                                    \
    ::demon::Status demon_check_status_ = (expr);                         \
    if (!demon_check_status_.ok()) {                                      \
      ::demon::internal::CheckFailed(__FILE__, __LINE__, #expr,           \
                                     demon_check_status_.ToString().c_str()); \
    }                                                                     \
  } while (false)

#endif  // DEMON_COMMON_CHECK_H_
