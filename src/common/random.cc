#include "common/random.h"

#include <cmath>

#include "common/check.h"

namespace demon {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
  // Avoid the (astronomically unlikely) all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextUint64(uint64_t bound) {
  DEMON_CHECK(bound > 0);
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  DEMON_CHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextUint64(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(theta);
  has_cached_gaussian_ = true;
  return radius * std::cos(theta);
}

int Rng::NextPoisson(double mean) {
  DEMON_CHECK(mean >= 0.0);
  if (mean == 0.0) return 0;
  if (mean > 60.0) {
    // Normal approximation with continuity correction.
    const double value = NextGaussian(mean, std::sqrt(mean));
    return value < 0.0 ? 0 : static_cast<int>(value + 0.5);
  }
  const double limit = std::exp(-mean);
  double product = NextDouble();
  int count = 0;
  while (product > limit) {
    ++count;
    product *= NextDouble();
  }
  return count;
}

double Rng::NextExponential(double mean) {
  DEMON_CHECK(mean > 0.0);
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u <= 1e-300);
  return -mean * std::log(u);
}

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  DEMON_CHECK(!weights.empty());
  const size_t n = weights.size();
  double total = 0.0;
  for (double w : weights) {
    DEMON_CHECK(w >= 0.0);
    total += w;
  }
  DEMON_CHECK(total > 0.0);

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }
  std::vector<uint32_t> small;
  std::vector<uint32_t> large;
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (uint32_t i : large) prob_[i] = 1.0;
  for (uint32_t i : small) prob_[i] = 1.0;
}

size_t AliasSampler::Sample(Rng* rng) const {
  const size_t column = static_cast<size_t>(rng->NextUint64(prob_.size()));
  return rng->NextDouble() < prob_[column] ? column : alias_[column];
}

}  // namespace demon
