#ifndef DEMON_COMMON_SYNC_H_
#define DEMON_COMMON_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

/// \file
/// Capability-annotated synchronization primitives.
///
/// Every mutex in the codebase is a `demon::Mutex`, every scoped lock a
/// `demon::MutexLock`, and every condition variable a `demon::CondVar`.
/// The wrappers carry Clang's capability-based thread-safety attributes
/// (Hutchins, Ballman & Sutherland, "C/C++ Thread Safety Analysis", SCAM
/// 2014), so a clang build with `-Wthread-safety -Wthread-safety-beta
/// -Werror` *proves* the locking discipline on every path — which guarded
/// field is touched under which lock, which private helper requires which
/// capability — instead of hoping the TSan job schedules the race. On
/// compilers without the attributes (GCC) every macro below expands to
/// nothing and the wrappers are zero-cost veneers over `std::mutex` /
/// `std::condition_variable`.
///
/// Annotation conventions (see DESIGN.md "Static concurrency analysis"):
///  - every non-atomic field touched by more than one thread carries
///    `DEMON_GUARDED_BY(mutex)`;
///  - every private helper that expects its caller to hold a lock carries
///    `DEMON_REQUIRES(mutex)` — the "Locked" suffix is backed by the
///    compiler, not a comment;
///  - cross-object capabilities are named through member expressions
///    (`pager_->mutex_`) or parameters (`pager.mutex_`); where the
///    analysis cannot prove two such expressions alias, the invariant is
///    stated with `Mutex::AssertHeld()` plus a runtime DEMON_CHECK;
///  - lock acquisition order is declared with `DEMON_ACQUIRED_BEFORE` /
///    `DEMON_ACQUIRED_AFTER` and tabulated in DESIGN.md.

// Clang implements the analysis; other compilers see no-ops. The
// `__has_attribute` probe keeps ancient clangs (pre-3.5) building.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define DEMON_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef DEMON_THREAD_ANNOTATION_
#define DEMON_THREAD_ANNOTATION_(x)  // expands to nothing on GCC
#endif

/// Marks a class as a lockable capability (argument names the kind,
/// e.g. "mutex", for diagnostics).
#define DEMON_CAPABILITY(x) DEMON_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases
/// a capability.
#define DEMON_SCOPED_CAPABILITY DEMON_THREAD_ANNOTATION_(scoped_lockable)

/// Field may only be read or written while holding `x`.
#define DEMON_GUARDED_BY(x) DEMON_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer field whose *pointee* may only be dereferenced while holding
/// `x` (the pointer itself is unguarded).
#define DEMON_PT_GUARDED_BY(x) DEMON_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function requires the caller to already hold the capabilities.
#define DEMON_REQUIRES(...) \
  DEMON_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function acquires the capabilities and does not release them.
#define DEMON_ACQUIRE(...) \
  DEMON_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases capabilities the caller holds.
#define DEMON_RELEASE(...) \
  DEMON_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function attempts the acquisition; the first argument is the return
/// value that signals success.
#define DEMON_TRY_ACQUIRE(...) \
  DEMON_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the capabilities (deadlock guard for public
/// entry points of a class that takes its own lock).
#define DEMON_EXCLUDES(...) \
  DEMON_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Tells the analysis a capability is held at this point (a checked
/// assumption for aliasing the analysis cannot prove — pair it with a
/// runtime DEMON_CHECK of the alias).
#define DEMON_ASSERT_CAPABILITY(x) \
  DEMON_THREAD_ANNOTATION_(assert_capability(x))

/// Declares that this mutex is acquired before the listed mutexes
/// whenever both are held (checked under -Wthread-safety-beta).
#define DEMON_ACQUIRED_BEFORE(...) \
  DEMON_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))

/// Declares that this mutex is acquired after the listed mutexes.
#define DEMON_ACQUIRED_AFTER(...) \
  DEMON_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Function returns a reference to the named capability, so annotations
/// can use accessor calls as capability expressions.
#define DEMON_RETURN_CAPABILITY(x) DEMON_THREAD_ANNOTATION_(lock_returned(x))

/// Turns the analysis off for one function. Reserved for code that is
/// correct for reasons the analysis cannot express (thread-private
/// initialization before publication, quiesced test hooks); every use
/// carries a comment saying which invariant stands in for the lock.
#define DEMON_NO_THREAD_SAFETY_ANALYSIS \
  DEMON_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace demon {

/// \brief `std::mutex` as a named capability.
///
/// Lock/Unlock/TryLock carry acquire/release annotations, so scoped and
/// manual locking both update the analysis' capability environment.
class DEMON_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() DEMON_ACQUIRE() { mu_.lock(); }
  void Unlock() DEMON_RELEASE() { mu_.unlock(); }
  bool TryLock() DEMON_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Tells the analysis this mutex is held here without acquiring it.
  /// For cross-object aliases the analysis cannot resolve (e.g. "the
  /// pager passed in *is* `pager_`"); always pair with a runtime check
  /// of that alias.
  void AssertHeld() const DEMON_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  mutable std::mutex mu_;
};

/// \brief RAII lock of a `Mutex` for one scope (the `std::lock_guard`
/// replacement; as a scoped capability the analysis tracks the region it
/// covers, including early returns).
class DEMON_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DEMON_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() DEMON_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// \brief Condition variable bound to `Mutex`.
///
/// `Wait` requires the mutex capability: the analysis treats the wait as
/// keeping the lock held (it is reacquired before return), which matches
/// how guarded state may be read in the surrounding wait loop. Predicate
/// waits are written as explicit loops —
/// `while (!cond) cv.Wait(mu);` — so the guarded reads in `cond` happen
/// in the annotated caller, not in an unannotatable lambda.
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and reacquires `mu` before
  /// returning. The caller must hold `mu` (spurious wakeups possible).
  void Wait(Mutex& mu) DEMON_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();  // ownership stays with the caller's MutexLock
  }

  /// Like Wait, but returns after at most `timeout_ns` nanoseconds even
  /// without a notification. Returns true when notified (or spuriously
  /// woken), false on timeout — callers re-check their predicate either
  /// way, exactly as with Wait. Used by periodic background threads (the
  /// telemetry scraper) so Stop() interrupts the inter-scrape sleep.
  bool WaitFor(Mutex& mu, uint64_t timeout_ns) DEMON_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    const std::cv_status status =
        cv_.wait_for(native, std::chrono::nanoseconds(timeout_ns));
    native.release();  // ownership stays with the caller's MutexLock
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace demon

#endif  // DEMON_COMMON_SYNC_H_
