#include "common/stats.h"

#include <cmath>

#include "common/check.h"

namespace demon {

double LogGamma(double x) {
  DEMON_CHECK(x > 0.0);
  // Lanczos approximation, g = 7, n = 9.
  static const double kCoefficients[9] = {
      0.99999999999980993,  676.5203681218851,   -1259.1392167224028,
      771.32342877765313,   -176.61502916214059, 12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection formula.
    return std::log(M_PI / std::sin(M_PI * x)) - LogGamma(1.0 - x);
  }
  x -= 1.0;
  double a = kCoefficients[0];
  const double t = x + 7.5;
  for (int i = 1; i < 9; ++i) a += kCoefficients[i] / (x + i);
  return 0.5 * std::log(2.0 * M_PI) + (x + 0.5) * std::log(t) - t +
         std::log(a);
}

namespace {

// Series representation of P(a, x), valid for x < a + 1.
double GammaPSeries(double a, double x) {
  const double log_prefix = a * std::log(x) - x - LogGamma(a);
  double term = 1.0 / a;
  double sum = term;
  for (int n = 1; n < 1000; ++n) {
    term *= x / (a + n);
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * 1e-15) break;
  }
  return std::exp(log_prefix) * sum;
}

// Continued-fraction representation of Q(a, x) = 1 - P(a, x), x >= a + 1.
double GammaQContinuedFraction(double a, double x) {
  const double log_prefix = a * std::log(x) - x - LogGamma(a);
  const double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 1000; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < 1e-15) break;
  }
  return std::exp(log_prefix) * h;
}

}  // namespace

double RegularizedGammaP(double a, double x) {
  DEMON_CHECK(a > 0.0);
  DEMON_CHECK(x >= 0.0);
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return GammaPSeries(a, x);
  return 1.0 - GammaQContinuedFraction(a, x);
}

double ChiSquareCdf(double x, double df) {
  if (x <= 0.0) return 0.0;
  return RegularizedGammaP(df / 2.0, x / 2.0);
}

double ChiSquarePValue(double x, double df) {
  return 1.0 - ChiSquareCdf(x, df);
}

ChiSquareTestResult ChiSquareHomogeneity(const std::vector<double>& counts1,
                                         double n1,
                                         const std::vector<double>& counts2,
                                         double n2) {
  DEMON_CHECK(counts1.size() == counts2.size());
  ChiSquareTestResult result;
  if (n1 <= 0.0 || n2 <= 0.0) return result;
  int used = 0;
  for (size_t i = 0; i < counts1.size(); ++i) {
    const double pooled = (counts1[i] + counts2[i]) / (n1 + n2);
    if (pooled <= 1e-12) continue;
    const double expected1 = n1 * pooled;
    const double expected2 = n2 * pooled;
    const double d1 = counts1[i] - expected1;
    const double d2 = counts2[i] - expected2;
    result.statistic += d1 * d1 / expected1 + d2 * d2 / expected2;
    ++used;
  }
  result.degrees_of_freedom = used > 1 ? used - 1 : 1;
  result.p_value = ChiSquarePValue(result.statistic,
                                   result.degrees_of_freedom);
  return result;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double Variance(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double mean = Mean(values);
  double sum = 0.0;
  for (double v : values) sum += (v - mean) * (v - mean);
  return sum / static_cast<double>(values.size());
}

}  // namespace demon
