#ifndef DEMON_COMMON_TIMER_H_
#define DEMON_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace demon {

/// \brief Simple wall-clock stopwatch used by the benchmark harnesses to
/// report per-phase times (detection vs. update, phase 1 vs. phase 2).
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// \brief Accumulates elapsed time across multiple start/stop intervals,
/// e.g. total detection time over a sequence of block additions.
class AccumulatingTimer {
 public:
  void Start() { timer_.Reset(); }
  void Stop() { total_seconds_ += timer_.ElapsedSeconds(); }
  double total_seconds() const { return total_seconds_; }
  void Clear() { total_seconds_ = 0.0; }

 private:
  WallTimer timer_;
  double total_seconds_ = 0.0;
};

}  // namespace demon

#endif  // DEMON_COMMON_TIMER_H_
