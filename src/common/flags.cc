#include "common/flags.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

#include "common/check.h"

namespace demon::flags {

namespace {

const char* TypeName(int type) {
  switch (type) {
    case 0:
      return "string";
    case 1:
      return "int";
    case 2:
      return "double";
    case 3:
      return "bool";
  }
  return "?";
}

/// Classic Levenshtein distance, small inputs only (flag names).
size_t EditDistance(const std::string& a, const std::string& b) {
  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diagonal = row[0];
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      const size_t up = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1,
                         diagonal + (a[i - 1] == b[j - 1] ? 0 : 1)});
      diagonal = up;
    }
  }
  return row[b.size()];
}

}  // namespace

void FlagSet::Define(const std::string& name, Flag flag) {
  DEMON_CHECK_MSG(!name.empty() && name.rfind("--", 0) != 0,
                  "flag names are registered without the -- prefix");
  const bool inserted = registered_.emplace(name, std::move(flag)).second;
  DEMON_CHECK_MSG(inserted, "flag registered twice");
}

void FlagSet::DefineString(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  Flag flag;
  flag.type = Type::kString;
  flag.help = help;
  flag.string_value = default_value;
  Define(name, std::move(flag));
}

void FlagSet::DefineInt(const std::string& name, long default_value,
                        const std::string& help) {
  Flag flag;
  flag.type = Type::kInt;
  flag.help = help;
  flag.int_value = default_value;
  Define(name, std::move(flag));
}

void FlagSet::DefineDouble(const std::string& name, double default_value,
                           const std::string& help) {
  Flag flag;
  flag.type = Type::kDouble;
  flag.help = help;
  flag.double_value = default_value;
  Define(name, std::move(flag));
}

void FlagSet::DefineBool(const std::string& name, bool default_value,
                         const std::string& help) {
  Flag flag;
  flag.type = Type::kBool;
  flag.help = help;
  flag.bool_value = default_value;
  Define(name, std::move(flag));
}

Status FlagSet::SetValue(const std::string& name, const std::string& value) {
  Flag& flag = registered_.at(name);
  char* end = nullptr;
  switch (flag.type) {
    case Type::kString:
      flag.string_value = value;
      break;
    case Type::kInt: {
      const long v = std::strtol(value.c_str(), &end, 10);
      if (value.empty() || *end != '\0') {
        return Status::InvalidArgument("--" + name + " expects an integer, "
                                       "got '" + value + "'");
      }
      flag.int_value = v;
      break;
    }
    case Type::kDouble: {
      const double v = std::strtod(value.c_str(), &end);
      if (value.empty() || *end != '\0') {
        return Status::InvalidArgument("--" + name + " expects a number, "
                                       "got '" + value + "'");
      }
      flag.double_value = v;
      break;
    }
    case Type::kBool:
      if (value == "1" || value == "true" || value == "on") {
        flag.bool_value = true;
      } else if (value == "0" || value == "false" || value == "off") {
        flag.bool_value = false;
      } else {
        return Status::InvalidArgument("--" + name + " expects a boolean "
                                       "(1/0/true/false/on/off), got '" +
                                       value + "'");
      }
      break;
  }
  flag.provided = true;
  return Status::OK();
}

std::string FlagSet::ClosestName(const std::string& name) const {
  std::string best;
  size_t best_distance = name.size();  // anything further is noise
  for (const auto& [candidate, flag] : registered_) {
    const size_t d = EditDistance(name, candidate);
    if (d < best_distance || (d == best_distance && !best.empty() &&
                              candidate.size() < best.size())) {
      best = candidate;
      best_distance = d;
    }
  }
  return best_distance <= 3 ? best : "";
}

Status FlagSet::Parse(int argc, const char* const* argv, int first) {
  for (int i = first; i < argc;) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      return Status::OK();
    }
    if (arg.rfind("--", 0) != 0 || arg.size() == 2) {
      return Status::InvalidArgument("expected --flag, got '" + arg +
                                     "' (see --help)");
    }
    const size_t eq = arg.find('=');
    const std::string name =
        arg.substr(2, eq == std::string::npos ? std::string::npos : eq - 2);
    const auto it = registered_.find(name);
    if (it == registered_.end()) {
      const std::string closest = ClosestName(name);
      std::string message = "unknown flag --" + name;
      if (!closest.empty()) message += " (did you mean --" + closest + "?)";
      return Status::InvalidArgument(message + "; see --help");
    }
    if (eq != std::string::npos) {
      DEMON_RETURN_NOT_OK(SetValue(name, arg.substr(eq + 1)));
      i += 1;
    } else if (it->second.type == Type::kBool &&
               (i + 1 >= argc ||
                std::string(argv[i + 1]).rfind("--", 0) == 0)) {
      // A bare boolean flag means true.
      DEMON_RETURN_NOT_OK(SetValue(name, "1"));
      i += 1;
    } else if (i + 1 < argc) {
      DEMON_RETURN_NOT_OK(SetValue(name, argv[i + 1]));
      i += 2;
    } else {
      return Status::InvalidArgument("missing value for --" + name);
    }
  }
  return Status::OK();
}

Status FlagSet::ParseKnown(int* argc, char** argv, int first) {
  int out = first;
  for (int i = first; i < *argc; ++i) {
    const std::string arg = argv[i];
    const size_t eq = arg.find('=');
    // Only the self-contained `--name=value` spelling is recognized here;
    // space-separated values would be ambiguous against the downstream
    // parser's flags.
    if (arg.rfind("--", 0) == 0 && eq != std::string::npos) {
      const std::string name = arg.substr(2, eq - 2);
      if (registered_.count(name) > 0) {
        DEMON_RETURN_NOT_OK(SetValue(name, arg.substr(eq + 1)));
        continue;
      }
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  return Status::OK();
}

std::string FlagSet::HelpText() const {
  std::string text = "usage: " + program_ + " [--flag value | --flag=value]\n";
  if (!description_.empty()) text += description_ + "\n";
  text += "\nflags:\n";
  for (const auto& [name, flag] : registered_) {
    std::string default_text;
    switch (flag.type) {
      case Type::kString:
        default_text = "\"" + flag.string_value + "\"";
        break;
      case Type::kInt:
        default_text = std::to_string(flag.int_value);
        break;
      case Type::kDouble: {
        char buffer[32];
        std::snprintf(buffer, sizeof(buffer), "%g", flag.double_value);
        default_text = buffer;
        break;
      }
      case Type::kBool:
        default_text = flag.bool_value ? "true" : "false";
        break;
    }
    text += "  --" + name + " (" +
            TypeName(static_cast<int>(flag.type)) + ", default " +
            default_text + ")\n        " + flag.help + "\n";
  }
  return text;
}

const FlagSet::Flag& FlagSet::Lookup(const std::string& name,
                                     Type type) const {
  const auto it = registered_.find(name);
  DEMON_CHECK_MSG(it != registered_.end(), "flag read but never registered");
  DEMON_CHECK_MSG(it->second.type == type, "flag read with the wrong type");
  return it->second;
}

std::string FlagSet::GetString(const std::string& name) const {
  return Lookup(name, Type::kString).string_value;
}

long FlagSet::GetInt(const std::string& name) const {
  return Lookup(name, Type::kInt).int_value;
}

double FlagSet::GetDouble(const std::string& name) const {
  return Lookup(name, Type::kDouble).double_value;
}

bool FlagSet::GetBool(const std::string& name) const {
  return Lookup(name, Type::kBool).bool_value;
}

bool FlagSet::Provided(const std::string& name) const {
  const auto it = registered_.find(name);
  DEMON_CHECK_MSG(it != registered_.end(), "flag read but never registered");
  return it->second.provided;
}

std::string Positional(int argc, const char* const* argv, int index,
                       const std::string& fallback) {
  if (index < 0 || index >= argc) return fallback;
  return argv[index];  // lint:allow(raw-argv)
}

}  // namespace demon::flags
