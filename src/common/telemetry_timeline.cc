#include "common/telemetry_timeline.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <utility>

#include "common/check.h"

namespace demon::telemetry {
namespace {

// Merge-walk delta against the previous cumulative sample: both vectors
// are sorted by name (SnapshotMetrics sweeps sorted keys), so one linear
// pass pairs each current metric with its predecessor. Metrics absent
// from `prev` (registered since the last scrape) delta from zero.
template <typename Pair, typename Value>
Value PrevValueOrZero(const std::vector<Pair>& prev, size_t* cursor,
                      const std::string& name, Value zero) {
  while (*cursor < prev.size() && prev[*cursor].first < name) ++*cursor;
  if (*cursor < prev.size() && prev[*cursor].first == name) {
    return prev[*cursor].second;
  }
  return zero;
}

const MetricsSample::HistogramRow* PrevHistogramOrNull(
    const std::vector<MetricsSample::HistogramRow>& prev, size_t* cursor,
    const std::string& name) {
  while (*cursor < prev.size() && prev[*cursor].name < name) ++*cursor;
  if (*cursor < prev.size() && prev[*cursor].name == name) {
    return &prev[*cursor];
  }
  return nullptr;
}

bool ParseDouble(std::string_view text, double* out) {
  // std::from_chars<double> is still missing from some libstdc++
  // versions this repo builds under, so go through strtod.
  if (text.empty()) return false;
  std::string buf(text);
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

TelemetryRegistry* CheckedRegistry(TelemetryRegistry* registry) {
  DEMON_CHECK_MSG(registry != nullptr, "TelemetryScraper needs a registry");
  return registry;
}

}  // namespace

MetricsTimeline::MetricsTimeline(size_t capacity)
    : ring_(std::max<size_t>(capacity, 1)) {}

void MetricsTimeline::Append(TimelineSample sample) {
  ring_[head_] = std::move(sample);
  head_ = (head_ + 1) % ring_.size();
  if (size_ < ring_.size()) {
    ++size_;
  } else {
    ++dropped_;
  }
}

std::vector<TimelineSample> MetricsTimeline::Samples() const {
  std::vector<TimelineSample> out;
  out.reserve(size_);
  const size_t start = (head_ + ring_.size() - size_) % ring_.size();
  for (size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

bool ParseAlertPolicy(std::string_view spec, AlertPolicy* out,
                      std::string* error) {
  AlertPolicy policy;
  std::string_view rest = spec;

  policy.source = AlertPolicy::Source::kGauge;
  if (rest.substr(0, 8) == "counter:") {
    policy.source = AlertPolicy::Source::kCounter;
    rest.remove_prefix(8);
  } else if (rest.substr(0, 6) == "delta:") {
    policy.source = AlertPolicy::Source::kCounterDelta;
    rest.remove_prefix(6);
  } else if (rest.substr(0, 10) == "histcount:") {
    policy.source = AlertPolicy::Source::kHistogramCount;
    rest.remove_prefix(10);
  }

  const size_t op_pos = rest.find_first_of("<>");
  if (op_pos == std::string_view::npos || op_pos == 0) {
    if (error != nullptr) {
      *error = "alert spec needs <metric><op><threshold>, op in {>,<}";
    }
    return false;
  }
  policy.metric = std::string(rest.substr(0, op_pos));
  policy.op = rest[op_pos] == '>' ? AlertPolicy::Op::kGreaterThan
                                  : AlertPolicy::Op::kLessThan;

  std::string_view tail = rest.substr(op_pos + 1);
  policy.for_n_scrapes = 1;
  const size_t colon = tail.rfind(':');
  if (colon != std::string_view::npos) {
    const std::string_view n_text = tail.substr(colon + 1);
    int n = 0;
    const auto [ptr, ec] =
        std::from_chars(n_text.data(), n_text.data() + n_text.size(), n);
    if (ec != std::errc() || ptr != n_text.data() + n_text.size() || n < 1) {
      if (error != nullptr) {
        *error = "alert spec :<n> suffix must be a positive integer";
      }
      return false;
    }
    policy.for_n_scrapes = n;
    tail = tail.substr(0, colon);
  }
  if (!ParseDouble(tail, &policy.threshold)) {
    if (error != nullptr) {
      *error = "alert spec threshold is not a number";
    }
    return false;
  }
  policy.name = std::string(spec);
  *out = std::move(policy);
  return true;
}

TelemetryScraper::TelemetryScraper(ScraperOptions options)
    : options_(options),
      alerts_fired_total_(
          CheckedRegistry(options.registry)->counter("alerts/fired")),
      timeline_(options.timeline_capacity) {}

TelemetryScraper::~TelemetryScraper() { Stop(); }

void TelemetryScraper::AddPolicy(AlertPolicy policy, AlertCallback callback) {
  Counter* fired =
      options_.registry->counter("alerts/" + policy.name + "/fired");
  MutexLock lock(mutex_);
  PolicyState state;
  state.policy = std::move(policy);
  state.callback = std::move(callback);
  state.fired_counter = fired;
  policies_.push_back(std::move(state));
}

void TelemetryScraper::Start() {
  DEMON_CHECK_MSG(options_.period_seconds > 0.0,
                  "scrape period must be positive");
  {
    MutexLock lock(mutex_);
    if (running_) return;
    running_ = true;
    stop_requested_ = false;
  }
  thread_ = std::thread([this] { Run(); });
}

void TelemetryScraper::Stop() {
  {
    MutexLock lock(mutex_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.NotifyAll();
  if (thread_.joinable()) thread_.join();
  MutexLock lock(mutex_);
  running_ = false;
}

void TelemetryScraper::Run() {
  const double period_ns_d = options_.period_seconds * 1e9;
  const uint64_t period_ns =
      period_ns_d >= 1.0 ? static_cast<uint64_t>(period_ns_d) : 1;
  MutexLock lock(mutex_);
  while (!stop_requested_) {
    // Sleep one period; Stop() notifies the condvar to cut it short.
    // Spurious wakeups just cost an early scrape, which is harmless.
    cv_.WaitFor(mutex_, period_ns);
    if (stop_requested_) break;
    ScrapeLocked();
  }
}

TimelineSample TelemetryScraper::ScrapeNow() {
  MutexLock lock(mutex_);
  return ScrapeLocked();
}

TimelineSample TelemetryScraper::ScrapeLocked() {
  TimelineSample sample;
  sample.seq = num_scrapes_++;
  // Holding mutex_ across the registry snapshot is the declared
  // ACQUIRED_BEFORE edge: scraper lock, then the registry's metrics lock.
  sample.cumulative = options_.registry->SnapshotMetrics();

  sample.counter_deltas.reserve(sample.cumulative.counters.size());
  size_t cursor = 0;
  for (const auto& [name, value] : sample.cumulative.counters) {
    const uint64_t before =
        PrevValueOrZero(prev_.counters, &cursor, name, uint64_t{0});
    // Counters are monotone per metric, but guard anyway so a torn test
    // double-registry never underflows into a huge delta.
    sample.counter_deltas.push_back(value >= before ? value - before : 0);
  }

  sample.histogram_deltas.reserve(sample.cumulative.histograms.size());
  cursor = 0;
  for (const MetricsSample::HistogramRow& row : sample.cumulative.histograms) {
    const MetricsSample::HistogramRow* before =
        PrevHistogramOrNull(prev_.histograms, &cursor, row.name);
    TimelineSample::HistogramDelta delta;
    if (before != nullptr && row.count >= before->count) {
      delta.count = row.count - before->count;
      delta.sum = row.sum - before->sum;
    } else {
      delta.count = row.count;
      delta.sum = row.sum;
    }
    sample.histogram_deltas.push_back(delta);
  }

  EvaluatePoliciesLocked(sample);
  prev_ = sample.cumulative;
  timeline_.Append(sample);
  return sample;
}

void TelemetryScraper::EvaluatePoliciesLocked(const TimelineSample& sample) {
  for (PolicyState& state : policies_) {
    const AlertPolicy& policy = state.policy;
    bool present = false;
    double value = 0.0;
    switch (policy.source) {
      case AlertPolicy::Source::kGauge: {
        const auto& gauges = sample.cumulative.gauges;
        const auto it = std::lower_bound(
            gauges.begin(), gauges.end(), policy.metric,
            [](const auto& entry, const std::string& name) {
              return entry.first < name;
            });
        if (it != gauges.end() && it->first == policy.metric) {
          present = true;
          value = it->second;
        }
        break;
      }
      case AlertPolicy::Source::kCounter:
      case AlertPolicy::Source::kCounterDelta: {
        const auto& counters = sample.cumulative.counters;
        const auto it = std::lower_bound(
            counters.begin(), counters.end(), policy.metric,
            [](const auto& entry, const std::string& name) {
              return entry.first < name;
            });
        if (it != counters.end() && it->first == policy.metric) {
          present = true;
          if (policy.source == AlertPolicy::Source::kCounter) {
            value = static_cast<double>(it->second);
          } else {
            const size_t index =
                static_cast<size_t>(it - counters.begin());
            value = static_cast<double>(sample.counter_deltas[index]);
          }
        }
        break;
      }
      case AlertPolicy::Source::kHistogramCount: {
        const auto& rows = sample.cumulative.histograms;
        const auto it = std::lower_bound(
            rows.begin(), rows.end(), policy.metric,
            [](const MetricsSample::HistogramRow& row,
               const std::string& name) { return row.name < name; });
        if (it != rows.end() && it->name == policy.metric) {
          present = true;
          value = static_cast<double>(it->count);
        }
        break;
      }
    }

    const bool violating =
        present && (policy.op == AlertPolicy::Op::kGreaterThan
                        ? value > policy.threshold
                        : value < policy.threshold);
    if (!violating) {
      // One healthy scrape (or a missing metric) re-arms the policy.
      state.streak = 0;
      state.latched = false;
      continue;
    }
    ++state.streak;
    if (state.latched || state.streak < policy.for_n_scrapes) continue;
    state.latched = true;
    alerts_fired_total_->Increment();
    state.fired_counter->Increment();
    AlertEvent event;
    event.policy = policy.name;
    event.metric = policy.metric;
    event.value = value;
    event.threshold = policy.threshold;
    event.t_ns = sample.cumulative.t_ns;
    event.seq = sample.seq;
    alerts_.push_back(event);
    if (state.callback) state.callback(alerts_.back());
  }
}

std::vector<TimelineSample> TelemetryScraper::Samples() const {
  MutexLock lock(mutex_);
  return timeline_.Samples();
}

std::vector<AlertEvent> TelemetryScraper::Alerts() const {
  MutexLock lock(mutex_);
  return alerts_;
}

uint64_t TelemetryScraper::num_scrapes() const {
  MutexLock lock(mutex_);
  return num_scrapes_;
}

uint64_t TelemetryScraper::timeline_dropped() const {
  MutexLock lock(mutex_);
  return timeline_.dropped();
}

std::string TimelineJsonl(const std::vector<TimelineSample>& samples) {
  std::string out;
  char buf[64];
  for (const TimelineSample& sample : samples) {
    std::snprintf(buf, sizeof(buf),
                  "{\"type\":\"scrape\",\"seq\":%llu,\"t_ns\":%llu",
                  static_cast<unsigned long long>(sample.seq),
                  static_cast<unsigned long long>(sample.cumulative.t_ns));
    out.append(buf);

    out.append(",\"counters\":{");
    bool first = true;
    for (size_t i = 0; i < sample.cumulative.counters.size(); ++i) {
      const auto& [name, value] = sample.cumulative.counters[i];
      if (!first) out.push_back(',');
      first = false;
      out.push_back('"');
      AppendJsonEscaped(name, &out);
      std::snprintf(buf, sizeof(buf), "\":[%llu,%llu]",
                    static_cast<unsigned long long>(value),
                    static_cast<unsigned long long>(sample.counter_deltas[i]));
      out.append(buf);
    }
    // Each counter renders as [cumulative, delta-this-period].
    out.append("},\"gauges\":{");
    first = true;
    for (const auto& [name, value] : sample.cumulative.gauges) {
      if (!first) out.push_back(',');
      first = false;
      out.push_back('"');
      AppendJsonEscaped(name, &out);
      out.append("\":");
      AppendJsonDouble(value, &out);
    }
    out.append("},\"histograms\":{");
    first = true;
    for (size_t i = 0; i < sample.cumulative.histograms.size(); ++i) {
      const MetricsSample::HistogramRow& row = sample.cumulative.histograms[i];
      const TimelineSample::HistogramDelta& delta =
          sample.histogram_deltas[i];
      if (!first) out.push_back(',');
      first = false;
      out.push_back('"');
      AppendJsonEscaped(row.name, &out);
      std::snprintf(buf, sizeof(buf), "\":{\"count\":%llu,\"sum\":",
                    static_cast<unsigned long long>(row.count));
      out.append(buf);
      AppendJsonDouble(row.sum, &out);
      out.append(",\"max\":");
      AppendJsonDouble(row.max, &out);
      std::snprintf(buf, sizeof(buf), ",\"dcount\":%llu,\"dsum\":",
                    static_cast<unsigned long long>(delta.count));
      out.append(buf);
      AppendJsonDouble(delta.sum, &out);
      out.push_back('}');
    }
    out.append("}}\n");
  }
  return out;
}

std::string ChromeTraceJson(const std::vector<SpanRecord>& spans,
                            const std::vector<TimelineSample>& samples) {
  uint64_t base_ns = std::numeric_limits<uint64_t>::max();
  for (const SpanRecord& span : spans) {
    base_ns = std::min(base_ns, span.start_ns);
  }
  for (const TimelineSample& sample : samples) {
    base_ns = std::min(base_ns, sample.cumulative.t_ns);
  }
  if (base_ns == std::numeric_limits<uint64_t>::max()) base_ns = 0;

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  AppendChromeSpanEvents(spans, base_ns, &first, &out);

  char buf[64];
  auto append_counter_event = [&](const std::string& name, uint64_t t_ns,
                                  double value) {
    if (!first) out.push_back(',');
    first = false;
    out.append("\n{\"name\":\"");
    AppendJsonEscaped(name, &out);
    const double ts_us = static_cast<double>(t_ns - base_ns) / 1000.0;
    std::snprintf(buf, sizeof(buf), "\",\"ph\":\"C\",\"ts\":%.3f,\"pid\":1,",
                  ts_us);
    out.append(buf);
    out.append("\"args\":{\"value\":");
    AppendJsonDouble(value, &out);
    out.append("}}");
  };

  for (const TimelineSample& sample : samples) {
    const uint64_t t_ns = sample.cumulative.t_ns;
    // Counters chart their per-period delta (a flat line means idle);
    // gauges chart their instantaneous value.
    for (size_t i = 0; i < sample.cumulative.counters.size(); ++i) {
      append_counter_event(sample.cumulative.counters[i].first, t_ns,
                           static_cast<double>(sample.counter_deltas[i]));
    }
    for (const auto& [name, value] : sample.cumulative.gauges) {
      append_counter_event(name, t_ns, value);
    }
  }
  out.append("\n]}\n");
  return out;
}

}  // namespace demon::telemetry
