#ifndef DEMON_COMMON_STATS_H_
#define DEMON_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace demon {

/// \brief Natural log of the Gamma function (Lanczos approximation).
/// Accurate to ~1e-13 for x > 0.
double LogGamma(double x);

/// \brief Regularized lower incomplete gamma function P(a, x).
/// Series expansion for x < a + 1, continued fraction otherwise.
double RegularizedGammaP(double a, double x);

/// \brief CDF of the chi-square distribution with `df` degrees of freedom
/// evaluated at `x` (probability mass below `x`).
double ChiSquareCdf(double x, double df);

/// \brief Upper-tail p-value of a chi-square statistic: P(X >= x | df).
double ChiSquarePValue(double x, double df);

/// \brief Result of a two-sample chi-square homogeneity test over a set of
/// regions (see deviation/significance.h for the DEMON use).
struct ChiSquareTestResult {
  double statistic = 0.0;
  double degrees_of_freedom = 0.0;
  /// P(observing a statistic at least this large under H0: same source).
  double p_value = 1.0;
};

/// \brief Chi-square homogeneity test of two count vectors over the same
/// regions. `counts1[i]` / `counts2[i]` are absolute counts of region i in
/// each sample; `n1`, `n2` the sample sizes. Regions where both pooled
/// expectations are ~0 are skipped. Returns df = (#used regions - 1),
/// clamped to at least 1.
ChiSquareTestResult ChiSquareHomogeneity(const std::vector<double>& counts1,
                                         double n1,
                                         const std::vector<double>& counts2,
                                         double n2);

/// \brief Mean of `values` (0 for empty input).
double Mean(const std::vector<double>& values);

/// \brief Population variance of `values` (0 for fewer than 2 entries).
double Variance(const std::vector<double>& values);

}  // namespace demon

#endif  // DEMON_COMMON_STATS_H_
