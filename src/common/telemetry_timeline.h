#ifndef DEMON_COMMON_TELEMETRY_TIMELINE_H_
#define DEMON_COMMON_TELEMETRY_TIMELINE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "common/telemetry.h"

/// \file
/// Time-series telemetry: periodic delta snapshots of every registered
/// metric into a bounded in-memory ring, plus declarative alert policies
/// evaluated on each scrape.
///
/// PR 4's registry is cumulative-since-start — one Prometheus or Chrome
/// trace dump at exit. For a system whose premise is *monitoring evolving
/// data* that is not enough: resident bytes, page-ins, token occupancy
/// and model churn only mean something as trajectories. The
/// `TelemetryScraper` background thread turns the registry into exactly
/// that — a `MetricsTimeline` of per-period samples with both cumulative
/// values and per-scrape deltas, exportable as JSONL and as Chrome-trace
/// counter tracks (`"ph":"C"`) that Perfetto renders as line charts next
/// to the existing spans.
///
/// The scraper is deliberately *not* gated on DEMON_TELEMETRY: like
/// ScopedTimer and MonitorStats it is part of the stats contract in every
/// build. With the gate OFF the hot-path macros record nothing, so the
/// timeline is simply flat — but a gate-off build still compiles, starts
/// and stops the scraper (the telemetry-off CI job proves it).
///
/// Lock order: the scraper's own mutex is declared ACQUIRED_BEFORE the
/// registry's metrics mutex (a scrape snapshots the registry while
/// holding the scraper lock), mirroring the ExtentPager precedent in
/// DESIGN.md's lock-order table.

namespace demon::telemetry {

/// One timeline point: a cumulative MetricsSample plus per-period deltas
/// against the previous scrape (first scrape: deltas from zero).
///
/// Delta vectors run parallel to the cumulative vectors — entry i of
/// `counter_deltas` belongs to `cumulative.counters[i]`. Metrics that
/// appear between scrapes get their full cumulative value as the delta.
struct TimelineSample {
  uint64_t seq = 0;  ///< 0-based scrape index (monotone, never reused).
  MetricsSample cumulative;
  std::vector<uint64_t> counter_deltas;
  struct HistogramDelta {
    uint64_t count = 0;
    double sum = 0.0;
  };
  std::vector<HistogramDelta> histogram_deltas;
};

/// \brief Bounded ring of TimelineSamples. When full, appending evicts
/// the oldest sample (and counts the eviction), so a long-running monitor
/// keeps the most recent window at a fixed memory bound.
///
/// Not internally synchronized — the TelemetryScraper owns one and
/// guards it with its own mutex.
class MetricsTimeline {
 public:
  explicit MetricsTimeline(size_t capacity);

  void Append(TimelineSample sample);

  /// Samples in scrape order (oldest retained first).
  std::vector<TimelineSample> Samples() const;

  size_t size() const { return size_; }
  size_t capacity() const { return ring_.size(); }
  /// Samples evicted because the ring was full.
  uint64_t dropped() const { return dropped_; }

 private:
  std::vector<TimelineSample> ring_;
  size_t head_ = 0;  ///< Next write slot.
  size_t size_ = 0;
  uint64_t dropped_ = 0;
};

/// \brief Declarative threshold rule evaluated by the scraper on every
/// sample — e.g. "itemset churn > 0.3 for 3 scrapes" or "resident bytes
/// > 0.9 × budget".
///
/// A policy *fires* on the transition into violation: once the metric has
/// violated the threshold on `for_n_scrapes` consecutive scrapes, the
/// callback runs and the `alerts/fired` (and `alerts/<name>/fired`)
/// counters bump. It then stays latched while the violation persists and
/// re-arms as soon as one scrape satisfies the threshold (or the metric
/// disappears), so a sustained breach fires once, not once per scrape.
struct AlertPolicy {
  /// Where the evaluated value comes from.
  enum class Source {
    kGauge,           ///< Gauge value at this scrape.
    kCounter,         ///< Cumulative counter value.
    kCounterDelta,    ///< Counter increment during this scrape period.
    kHistogramCount,  ///< Cumulative histogram count.
  };
  enum class Op { kGreaterThan, kLessThan };

  std::string name;    ///< Names the `alerts/<name>/fired` counter.
  std::string metric;  ///< Registry name, e.g. "evolution/uw/churn".
  Source source = Source::kGauge;
  Op op = Op::kGreaterThan;
  double threshold = 0.0;
  /// Consecutive violating scrapes required before firing (>= 1).
  int for_n_scrapes = 1;
};

/// What a fired policy reports to its callback and to `Alerts()`.
struct AlertEvent {
  std::string policy;
  std::string metric;
  double value = 0.0;      ///< Metric value on the firing scrape.
  double threshold = 0.0;
  uint64_t t_ns = 0;       ///< Timestamp of the firing sample.
  uint64_t seq = 0;        ///< Scrape index of the firing sample.
};

using AlertCallback = std::function<void(const AlertEvent&)>;

/// Parses the CLI alert-spec grammar into a policy:
///
///   [counter:|delta:|histcount:]<metric><op><threshold>[:<n>]
///
/// where `<op>` is `>` or `<`, the optional prefix picks the source
/// (default gauge), and the optional `:<n>` suffix sets for_n_scrapes
/// (default 1). Examples: `evolution/uw-itemsets/churn>0.3:3`,
/// `counter:tidlist/page_ins>1000`, `tidlist/resident_bytes>6e6`.
/// Returns false (with a message in `*error`) on malformed specs.
bool ParseAlertPolicy(std::string_view spec, AlertPolicy* out,
                      std::string* error);

struct ScraperOptions {
  TelemetryRegistry* registry = nullptr;  ///< Required.
  /// Background scrape period. Start() rejects values <= 0.
  double period_seconds = 0.25;
  /// MetricsTimeline ring capacity.
  size_t timeline_capacity = 4096;
};

/// \brief Background thread that scrapes `registry` every period into a
/// MetricsTimeline and evaluates alert policies on each sample.
///
/// Usage: construct, AddPolicy() as needed, Start(); Stop() joins the
/// thread (the destructor calls it). ScrapeNow() takes one synchronous
/// sample — with or without the thread running — and is how callers pin
/// an exact boundary (demon_cli scrapes after each quiesced block, and
/// tests take a final post-quiesce scrape to compare against registry
/// totals).
///
/// Thread safety: all public methods may be called from any thread.
/// Sample consistency is inherited from TelemetryRegistry::SnapshotMetrics
/// — per-metric monotone, no cross-metric simultaneity claim.
class TelemetryScraper {
 public:
  explicit TelemetryScraper(ScraperOptions options);
  ~TelemetryScraper();

  TelemetryScraper(const TelemetryScraper&) = delete;
  TelemetryScraper& operator=(const TelemetryScraper&) = delete;

  /// Registers a policy (callback may be null — firing still bumps the
  /// alert counters and is recorded in Alerts()).
  void AddPolicy(AlertPolicy policy, AlertCallback callback = nullptr)
      DEMON_EXCLUDES(mutex_);

  /// Starts the background scrape thread. No-op if already running.
  void Start() DEMON_EXCLUDES(mutex_);

  /// Stops and joins the background thread. Idempotent.
  void Stop() DEMON_EXCLUDES(mutex_);

  /// Takes one scrape synchronously and returns it (also appended to the
  /// timeline and run through the alert policies).
  TimelineSample ScrapeNow() DEMON_EXCLUDES(mutex_);

  /// Copy of the retained timeline, oldest first.
  std::vector<TimelineSample> Samples() const DEMON_EXCLUDES(mutex_);

  /// Every alert fired so far, in firing order.
  std::vector<AlertEvent> Alerts() const DEMON_EXCLUDES(mutex_);

  /// Total scrapes taken (background + ScrapeNow), including any whose
  /// samples the ring has since evicted.
  uint64_t num_scrapes() const DEMON_EXCLUDES(mutex_);

  /// Samples evicted from the ring so far.
  uint64_t timeline_dropped() const DEMON_EXCLUDES(mutex_);

 private:
  void Run() DEMON_EXCLUDES(mutex_);
  TimelineSample ScrapeLocked() DEMON_REQUIRES(mutex_);
  void EvaluatePoliciesLocked(const TimelineSample& sample)
      DEMON_REQUIRES(mutex_);

  const ScraperOptions options_;
  Counter* const alerts_fired_total_;  ///< "alerts/fired"; cached atomic.

  /// Scrapes snapshot the registry while holding this lock, so it sits
  /// above the registry's metrics mutex in the lock order (same edge the
  /// ExtentPager declares — see DESIGN.md's lock-order table).
  mutable Mutex mutex_
      DEMON_ACQUIRED_BEFORE(options_.registry->metrics_mutex());
  CondVar cv_;  ///< Signalled by Stop() to interrupt the period sleep.

  MetricsTimeline timeline_ DEMON_GUARDED_BY(mutex_);
  MetricsSample prev_ DEMON_GUARDED_BY(mutex_);  ///< Last cumulative scrape.
  uint64_t num_scrapes_ DEMON_GUARDED_BY(mutex_) = 0;

  struct PolicyState {
    AlertPolicy policy;
    AlertCallback callback;
    Counter* fired_counter = nullptr;  ///< "alerts/<name>/fired".
    int streak = 0;    ///< Consecutive violating scrapes.
    bool latched = false;  ///< Fired and still violating.
  };
  std::vector<PolicyState> policies_ DEMON_GUARDED_BY(mutex_);
  std::vector<AlertEvent> alerts_ DEMON_GUARDED_BY(mutex_);

  bool running_ DEMON_GUARDED_BY(mutex_) = false;
  bool stop_requested_ DEMON_GUARDED_BY(mutex_) = false;
  std::thread thread_;  ///< Touched only by Start/Stop (serialized there).
};

/// Renders samples as JSONL: one `{"type":"scrape",...}` object per line
/// with cumulative counters/gauges/histograms and per-period deltas.
/// demon_cli merges these lines with the engine's `{"type":"block",...}`
/// records (sorted by t_ns) into the --timeline_out file.
std::string TimelineJsonl(const std::vector<TimelineSample>& samples);

/// Chrome trace_event JSON merging span events (`ph:"X"`) with counter
/// tracks (`ph:"C"`) from the timeline, on one shared timebase (the
/// earliest span start or sample timestamp). Gauges chart their value;
/// counters chart their per-period delta (activity, not the cumulative
/// total — a flat line means idle, which is what you want to see).
std::string ChromeTraceJson(const std::vector<SpanRecord>& spans,
                            const std::vector<TimelineSample>& samples);

}  // namespace demon::telemetry

#endif  // DEMON_COMMON_TELEMETRY_TIMELINE_H_
