#ifndef DEMON_COMMON_THREAD_POOL_H_
#define DEMON_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace demon {

/// \brief A fixed-size worker pool over an unbounded task queue.
///
/// Built for the MaintenanceEngine's per-block fan-out: independent model
/// maintainers are updated concurrently, then the dispatcher calls
/// `WaitIdle()` before touching any result. `WaitIdle()` establishes a
/// happens-before edge with every completed task, which is what makes
/// parallel maintenance observably identical to sequential maintenance
/// (each task owns disjoint state; the barrier publishes it).
///
/// Tasks may call `Submit` (the counting layer fans sub-work out onto the
/// same pool via `ParallelFor`), but must never call `WaitIdle` — a worker
/// waiting for `in_flight == 0` counts itself and would deadlock.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (must be >= 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; never blocks. Callable from within a task.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished executing.
  /// Must not be called from within a task (see class comment).
  void WaitIdle();

  size_t num_threads() const { return workers_.size(); }

  /// True when the calling thread is one of *this* pool's workers — i.e.
  /// the caller is already inside a ParallelFor/Submit task. Nested
  /// fan-out layers use this to detect oversubscription.
  bool InWorker() const;

  /// Workers not currently executing a task, by a relaxed snapshot. Purely
  /// advisory: the answer can be stale by the time the caller acts on it,
  /// which is fine for its one job — sizing nested shard fan-out, where a
  /// misjudgment costs a little load balance, never correctness.
  size_t ApproxIdleThreads() const {
    const size_t busy = busy_.load(std::memory_order_relaxed);
    return busy >= workers_.size() ? 0 : workers_.size() - busy;
  }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  /// Tasks queued plus tasks currently executing.
  size_t in_flight_ = 0;
  /// Workers currently executing a task (relaxed; see ApproxIdleThreads).
  std::atomic<size_t> busy_{0};
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// \brief Runs `body(0) .. body(n-1)` with the pool's workers helping, and
/// returns once every index has finished. With a null pool (or n <= 1) the
/// indices run inline on the calling thread.
///
/// Unlike Submit + WaitIdle, this is safe to call from *inside* a pool
/// task: indices are claimed from a shared atomic cursor and the caller
/// claims alongside the workers, so it makes progress even when every
/// worker is busy (including when the caller is the only worker). The
/// final wait only covers indices other threads have already claimed —
/// never unrelated queued work — so nesting cannot deadlock. This is what
/// lets the MaintenanceEngine share one pool between monitor-level and
/// counting-level parallelism.
///
/// `body` must be safe to invoke concurrently for distinct indices. All
/// writes made by `body` happen-before the return.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& body);

}  // namespace demon

#endif  // DEMON_COMMON_THREAD_POOL_H_
