#ifndef DEMON_COMMON_THREAD_POOL_H_
#define DEMON_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace demon {

/// \brief A fixed-size worker pool over an unbounded task queue.
///
/// Built for the MaintenanceEngine's per-block fan-out: independent model
/// maintainers are updated concurrently, then the dispatcher calls
/// `WaitIdle()` before touching any result. `WaitIdle()` establishes a
/// happens-before edge with every completed task, which is what makes
/// parallel maintenance observably identical to sequential maintenance
/// (each task owns disjoint state; the barrier publishes it).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (must be >= 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; never blocks. Tasks must not call back into the
  /// pool's Submit/WaitIdle (single-owner usage).
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished executing.
  void WaitIdle();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  /// Tasks queued plus tasks currently executing.
  size_t in_flight_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace demon

#endif  // DEMON_COMMON_THREAD_POOL_H_
