#ifndef DEMON_COMMON_THREAD_POOL_H_
#define DEMON_COMMON_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/sync.h"

namespace demon {

/// \brief A fixed-size worker pool over an unbounded task queue.
///
/// Built for the MaintenanceEngine's per-block fan-out: independent model
/// maintainers are updated concurrently, then the dispatcher calls
/// `WaitIdle()` before touching any result. `WaitIdle()` establishes a
/// happens-before edge with every completed task, which is what makes
/// parallel maintenance observably identical to sequential maintenance
/// (each task owns disjoint state; the barrier publishes it).
///
/// Tasks may call `Submit` (the counting layer fans sub-work out onto the
/// same pool via `ParallelFor`), but must never call `WaitIdle` — a worker
/// waiting for `in_flight == 0` counts itself and would deadlock.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (must be >= 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; never blocks. Callable from within a task.
  void Submit(std::function<void()> task) DEMON_EXCLUDES(mutex_);

  /// Blocks until every task submitted so far has finished executing.
  /// Must not be called from within a task (see class comment).
  void WaitIdle() DEMON_EXCLUDES(mutex_);

  size_t num_threads() const { return workers_.size(); }

  /// True when the calling thread is one of *this* pool's workers — i.e.
  /// the caller is already inside a ParallelFor/Submit task. Nested
  /// fan-out layers use this to detect oversubscription.
  bool InWorker() const;

  /// \name Parallelism tokens
  ///
  /// The pool carries `num_threads()` tokens — a budget of extra threads
  /// the process is allowed to occupy beyond the calling one. Every layer
  /// that fans out first borrows tokens and sizes its fan-out to what it
  /// got: the engine borrows one token per in-flight monitor task,
  /// ParallelFor borrows one per helper it submits, and the counting layer
  /// reads the remainder to size its shard split. Because every borrower
  /// draws from the same budget, nested fan-out can never put more
  /// runnable tasks in play than the pool has workers — the
  /// oversubscription collapse the old per-layer idle-thread guess allowed
  /// (each nesting level independently assumed the whole pool was free).
  ///
  /// Acquisition is best-effort and never blocks: a layer that gets zero
  /// tokens runs serially on its own thread, which is exactly the desired
  /// degradation under load.
  /// @{

  /// Takes up to `want` tokens from the budget; returns how many were
  /// actually taken (possibly 0). Never blocks.
  size_t TryAcquireTokens(size_t want);

  /// Returns `n` previously acquired tokens.
  void ReleaseTokens(size_t n);

  /// Tokens currently unborrowed, by a relaxed snapshot. Purely advisory:
  /// the answer can be stale by the time the caller acts on it, which is
  /// fine for its one job — sizing nested shard fan-out, where a
  /// misjudgment costs a little load balance, never correctness.
  size_t ApproxAvailableTokens() const {
    return tokens_.load(std::memory_order_relaxed);
  }

  /// RAII borrow of up to `want` tokens for one scope — what the engine
  /// wraps around each monitor task so counting layers underneath see a
  /// smaller budget while the task runs.
  class TokenLease {
   public:
    TokenLease(ThreadPool* pool, size_t want)
        : pool_(pool),
          acquired_(pool != nullptr ? pool->TryAcquireTokens(want) : 0) {}
    ~TokenLease() {
      if (acquired_ > 0) pool_->ReleaseTokens(acquired_);
    }

    TokenLease(const TokenLease&) = delete;
    TokenLease& operator=(const TokenLease&) = delete;

    size_t acquired() const { return acquired_; }

   private:
    ThreadPool* const pool_;
    const size_t acquired_;
  };

  /// @}

 private:
  void WorkerLoop() DEMON_EXCLUDES(mutex_);

  Mutex mutex_;
  CondVar work_available_;
  CondVar idle_;
  std::deque<std::function<void()>> queue_ DEMON_GUARDED_BY(mutex_);
  /// Tasks queued plus tasks currently executing.
  size_t in_flight_ DEMON_GUARDED_BY(mutex_) = 0;
  /// Unborrowed parallelism tokens (see the tokens section above).
  std::atomic<size_t> tokens_;
  bool stopping_ DEMON_GUARDED_BY(mutex_) = false;
  /// Written only by the constructor; joined by the destructor.
  std::vector<std::thread> workers_;
};

/// \brief Runs `body(0) .. body(n-1)` with the pool's workers helping, and
/// returns once every index has finished. With a null pool (or n <= 1) the
/// indices run inline on the calling thread.
///
/// Unlike Submit + WaitIdle, this is safe to call from *inside* a pool
/// task: indices are claimed from a shared atomic cursor and the caller
/// claims alongside the workers, so it makes progress even when every
/// worker is busy (including when the caller is the only worker). The
/// final wait only covers indices other threads have already claimed —
/// never unrelated queued work — so nesting cannot deadlock. This is what
/// lets the MaintenanceEngine share one pool between monitor-level and
/// counting-level parallelism.
///
/// Helper submission is token-gated: one token is borrowed per helper and
/// returned when that helper finishes, so a ParallelFor issued while the
/// pool's budget is exhausted (every worker already claimed by an outer
/// layer) submits nothing and runs the indices inline on the caller —
/// serial fallback instead of queue pile-up.
///
/// `body` must be safe to invoke concurrently for distinct indices. All
/// writes made by `body` happen-before the return.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& body);

}  // namespace demon

#endif  // DEMON_COMMON_THREAD_POOL_H_
