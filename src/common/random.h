#ifndef DEMON_COMMON_RANDOM_H_
#define DEMON_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace demon {

/// \brief Deterministic, fast pseudo-random generator (xoshiro256**)
/// with the sampling distributions the synthetic data generators need.
///
/// All DEMON generators take explicit seeds so that every experiment is
/// reproducible bit-for-bit across runs.
class Rng {
 public:
  /// Seeds the engine via SplitMix64 expansion of `seed`.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Returns the next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextUint64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Standard normal via Box–Muller (cached second deviate).
  double NextGaussian();

  /// Normal with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

  /// Poisson-distributed value with the given mean (Knuth's method for
  /// small means, normal approximation above 60).
  int NextPoisson(double mean);

  /// Exponentially distributed value with the given mean.
  double NextExponential(double mean);

  /// Returns true with probability `p`.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Fisher–Yates shuffles `values` in place.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    for (size_t i = values->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextUint64(i));
      std::swap((*values)[i - 1], (*values)[j]);
    }
  }

 private:
  uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

/// \brief Draws indices in [0, n) with probabilities proportional to
/// `weights` in O(1) per draw (alias method).
///
/// Used by the Quest generator to pick patterns by their (exponentially
/// distributed) weights.
class AliasSampler {
 public:
  /// Builds the alias table. `weights` must be non-empty with non-negative
  /// entries summing to a positive value.
  explicit AliasSampler(const std::vector<double>& weights);

  /// Samples one index.
  size_t Sample(Rng* rng) const;

  size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

}  // namespace demon

#endif  // DEMON_COMMON_RANDOM_H_
