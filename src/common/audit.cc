#include "common/audit.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace demon::audit {
namespace {

void DefaultFailureHandler(const std::vector<Violation>& violations) {
  for (const Violation& violation : violations) {
    std::fputs(FormatViolation(violation).c_str(), stderr);
  }
  std::fprintf(stderr, "DEMON audit: %zu invariant violation(s); aborting\n",
               violations.size());
  std::abort();
}

FailureHandler& InstalledHandler() {
  static FailureHandler handler;  // empty = default
  return handler;
}

}  // namespace

std::string FormatViolation(const Violation& violation) {
  std::string out;
  out += "AUDIT VIOLATION [" + violation.module + "] " + violation.invariant +
         "\n";
  out += "  " + violation.message + "\n";
  if (!violation.state.empty()) {
    out += "  state: " + violation.state + "\n";
  }
  return out;
}

void AuditResult::Fail(std::string module, std::string invariant,
                       std::string message, std::string state) {
  violations_.push_back(Violation{std::move(module), std::move(invariant),
                                  std::move(message), std::move(state)});
}

bool AuditResult::Has(std::string_view invariant) const {
  for (const Violation& violation : violations_) {
    if (violation.invariant == invariant) return true;
  }
  return false;
}

std::string AuditResult::ToString() const {
  std::string out;
  for (const Violation& violation : violations_) {
    out += FormatViolation(violation);
  }
  return out;
}

void AuditResult::CheckOrDie() const {
  if (violations_.empty()) return;
  const FailureHandler& handler = InstalledHandler();
  if (handler) {
    handler(violations_);
  } else {
    DefaultFailureHandler(violations_);
  }
}

FailureHandler SetFailureHandlerForTest(FailureHandler handler) {
  FailureHandler previous = std::move(InstalledHandler());
  InstalledHandler() = std::move(handler);
  return previous;
}

}  // namespace demon::audit
