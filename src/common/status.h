#ifndef DEMON_COMMON_STATUS_H_
#define DEMON_COMMON_STATUS_H_

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace demon {

/// \brief Error category for a failed operation.
///
/// The library does not use exceptions (database-style codebase); every
/// fallible operation returns a `Status` or a `Result<T>`.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kIoError = 6,
  kInternal = 7,
  kNotImplemented = 8,
  kResourceExhausted = 9,
  kDataLoss = 10,
};

/// \brief Returns a short human-readable name for `code` (e.g. "IOError").
const char* StatusCodeToString(StatusCode code);

/// \brief A success-or-error value describing the outcome of an operation.
///
/// `Status` is cheap to copy in the success case (no allocation) and carries
/// a code plus message otherwise. Modeled on the Arrow/RocksDB idiom.
/// Marked [[nodiscard]]: silently dropping an error is how a corrupt file
/// becomes a corrupt model, so every ignored Status is a compile warning
/// (an error under DEMON_WERROR).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status OK() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  [[nodiscard]] static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  [[nodiscard]] static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  [[nodiscard]] static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  [[nodiscard]] static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  [[nodiscard]] static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  /// Unrecoverable corruption or truncation of data at rest (a file whose
  /// framing is right but whose payload is damaged). Distinct from
  /// InvalidArgument, which covers wrong-format/wrong-version input.
  [[nodiscard]] static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders as "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// \brief Holds either a value of type `T` or an error `Status`.
///
/// A default-constructed `Result` is an internal error; always initialize
/// from a value or a non-OK status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result() : status_(Status::Internal("uninitialized Result")) {}

  // NOLINTNEXTLINE(google-explicit-constructor): ergonomic `return value;`.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}

  // NOLINTNEXTLINE(google-explicit-constructor): ergonomic `return status;`.
  Result(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Precondition: ok(). The DEMON_ASSIGN_OR_RETURN macro and callers must
  /// check `ok()` first.
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  /// Moves the value out; precondition: ok().
  T ValueOrDie() && { return std::move(*value_); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace demon

/// Propagates a non-OK status to the caller.
#define DEMON_RETURN_NOT_OK(expr)                 \
  do {                                            \
    ::demon::Status demon_status_ = (expr);       \
    if (!demon_status_.ok()) return demon_status_; \
  } while (false)

#define DEMON_CONCAT_IMPL(x, y) x##y
#define DEMON_CONCAT(x, y) DEMON_CONCAT_IMPL(x, y)

/// Evaluates `rexpr` (a Result<T>); on error returns the status, otherwise
/// assigns the value to `lhs`.
#define DEMON_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  auto DEMON_CONCAT(demon_result_, __LINE__) = (rexpr);           \
  if (!DEMON_CONCAT(demon_result_, __LINE__).ok())                \
    return DEMON_CONCAT(demon_result_, __LINE__).status();        \
  lhs = std::move(DEMON_CONCAT(demon_result_, __LINE__)).value()

#endif  // DEMON_COMMON_STATUS_H_
