#ifndef DEMON_COMMON_AUDIT_H_
#define DEMON_COMMON_AUDIT_H_

#include <functional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

// DEMON_AUDIT_ENABLED is defined to 1 by the DEMON_AUDIT CMake option.
// Auditor *functions* are always compiled (and unit-tested in every build);
// the flag only decides whether the MaintenanceEngine invokes them at block
// boundaries and whether inline hot-path audit assertions are active.
#ifndef DEMON_AUDIT_ENABLED
#define DEMON_AUDIT_ENABLED 0
#endif

namespace demon::audit {

/// True when the build was configured with -DDEMON_AUDIT=ON.
inline constexpr bool kEnabled = DEMON_AUDIT_ENABLED != 0;

/// \brief One violated structural invariant, reported by a deep auditor.
///
/// DEMON's correctness story is that every incremental maintainer produces
/// exactly the model a from-scratch run would; that guarantee rests on
/// structural invariants (negative-border closure, CF additivity, BSS
/// window bookkeeping) which the auditors verify directly. A violation is
/// a corruption caught at the source, before it becomes a wrong model.
struct Violation {
  /// Subsystem that owns the invariant, e.g. "tidlist", "cf-tree".
  std::string module;
  /// Stable invariant identifier, e.g. "tidlist/sorted-unique".
  std::string invariant;
  /// Human-readable description of the violation, with offending values.
  std::string message;
  /// Dump of the offending state (list contents, CF triples, ...).
  std::string state;
};

/// Renders one violation as a multi-line report block.
std::string FormatViolation(const Violation& violation);

/// \brief Ostream-style builder for audit messages and state dumps:
/// `Msg() << "item " << item << " out of range"` converts to std::string.
class Msg {
 public:
  template <typename T>
  Msg& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

  // NOLINTNEXTLINE(google-explicit-constructor): the whole point.
  operator std::string() const { return os_.str(); }
  std::string str() const { return os_.str(); }

 private:
  std::ostringstream os_;
};

/// \brief Accumulator for violations found by one audit pass. Auditors
/// append via AUDIT_CHECK / AUDIT_FAIL; the caller inspects `ok()` or
/// escalates with `CheckOrDie()`.
class AuditResult {
 public:
  void Fail(std::string module, std::string invariant, std::string message,
            std::string state = "");

  bool ok() const { return violations_.empty(); }
  const std::vector<Violation>& violations() const { return violations_; }

  /// True if some accumulated violation has exactly this invariant id.
  bool Has(std::string_view invariant) const;

  /// All violations rendered as one report ("" when ok()).
  std::string ToString() const;

  /// If violations accumulated, hands them to the installed failure
  /// handler (default: print every report to stderr and abort).
  void CheckOrDie() const;

 private:
  std::vector<Violation> violations_;
};

using FailureHandler = std::function<void(const std::vector<Violation>&)>;

/// Replaces the process-wide failure handler invoked by CheckOrDie,
/// returning the previous one. Passing nullptr restores the default
/// print-and-abort handler. Test-only: lets the corruption-injection
/// tests observe reports instead of dying.
FailureHandler SetFailureHandlerForTest(FailureHandler handler);

}  // namespace demon::audit

/// Unconditionally records a violation on `audit` (an AuditResult*).
#define AUDIT_FAIL(audit, module, invariant, message, state) \
  (audit)->Fail((module), (invariant), (message), (state))

/// Records a violation on `audit` when `cond` is false. `message` and
/// `state` may be built with demon::audit::Msg; they are only evaluated on
/// failure.
#define AUDIT_CHECK(audit, module, invariant, cond, message, state)      \
  do {                                                                   \
    if (!(cond)) {                                                       \
      AUDIT_FAIL((audit), (module), (invariant),                         \
                 std::string("`") + #cond + "` violated: " +             \
                     std::string(message),                               \
                 std::string(state));                                    \
    }                                                                    \
  } while (false)

#endif  // DEMON_COMMON_AUDIT_H_
