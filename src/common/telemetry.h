#ifndef DEMON_COMMON_TELEMETRY_H_
#define DEMON_COMMON_TELEMETRY_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/sync.h"

// DEMON_TELEMETRY_ENABLED is defined (to 1 or 0) by the DEMON_TELEMETRY
// CMake option, which defaults to ON. The registry, metric classes and
// exporters are always compiled; the flag only decides whether the
// DEMON_TRACE_SPAN / DEMON_COUNTER_ADD / DEMON_HISTOGRAM_RECORD macros
// expand to live instrumentation or to no-ops, mirroring how DEMON_AUDIT
// gates invocation rather than compilation.
#ifndef DEMON_TELEMETRY_ENABLED
#define DEMON_TELEMETRY_ENABLED 1
#endif

namespace demon::telemetry {

/// True when the translation unit sees -DDEMON_TELEMETRY=ON (the default).
inline constexpr bool kEnabled = DEMON_TELEMETRY_ENABLED != 0;

/// Nanoseconds on the steady clock. All span timestamps share this base.
uint64_t NowNanos();

/// Nanoseconds of CPU time consumed by the *calling thread*
/// (CLOCK_THREAD_CPUTIME_ID). Falls back to 0 on platforms without a
/// per-thread CPU clock. The engine records this next to wall time so
/// per-monitor response stats stop sum-inflating under time-slicing:
/// four monitors sharing one core each report ~4x wall time, but their
/// CPU times still add up to the core's capacity.
uint64_t ThreadCpuNanos();

/// Adds `v` to `target` with a relaxed CAS loop (portable fetch_add for
/// atomic<double>, which some standard libraries still lack).
inline void AtomicAddDouble(std::atomic<double>& target, double v) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + v,
                                       std::memory_order_relaxed)) {
  }
}

/// Raises `target` to at least `v` with a relaxed CAS loop.
inline void AtomicMaxDouble(std::atomic<double>& target, double v) {
  double current = target.load(std::memory_order_relaxed);
  while (v > current && !target.compare_exchange_weak(
                            current, v, std::memory_order_relaxed)) {
  }
}

/// Monotonically increasing event count. Lock-free; any thread may Add.
class Counter {
 public:
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depths, model sizes).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// \brief Fixed-bucket latency histogram with a lock-free record path.
///
/// Buckets are exponential, five per decade from 100ns to 10s (plus an
/// underflow and an overflow bucket) — wide enough to span a PT-Scan
/// shard and a full offline re-mine in one layout, so every phase in the
/// system shares one bucket geometry and summaries stay comparable.
class Histogram {
 public:
  /// Five buckets per decade over [1e-7, 10): 40 finite buckets, plus
  /// index 0 (underflow: v < 1e-7) and index kNumBuckets-1 (overflow).
  static constexpr size_t kBucketsPerDecade = 5;
  static constexpr int kMinExponent = -7;  // 1e-7 s = 100 ns
  static constexpr int kMaxExponent = 1;   // 1e1 s  = 10 s
  static constexpr size_t kNumFinite =
      kBucketsPerDecade * (kMaxExponent - kMinExponent);
  static constexpr size_t kNumBuckets = kNumFinite + 2;

  void Record(double v);

  /// \brief Self-consistent point-in-time copy of a histogram.
  ///
  /// A histogram's fields are individually atomic but updated as a group,
  /// so readers racing a Record() can see `count` incremented before the
  /// bucket (or vice versa). A Snapshot reads the buckets once and
  /// *derives* the count from their sum, so cumulative bucket rows always
  /// add up to the reported count — the invariant Prometheus scrapers and
  /// the timeline scraper rely on. Record() bumps the bucket before
  /// `count_`, so the derived count is also monotone across snapshots.
  struct Snapshot {
    uint64_t buckets[kNumBuckets] = {};
    uint64_t count = 0;  ///< Sum of `buckets`.
    double sum = 0.0;
    double max = 0.0;

    /// Quantile estimate over the snapshot (same interpolation as
    /// Histogram::ApproxQuantile, but immune to concurrent records).
    double ApproxQuantile(double q) const;
  };

  /// Takes a Snapshot. Safe to call while other threads Record().
  Snapshot TakeSnapshot() const;

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double max() const { return max_.load(std::memory_order_relaxed); }
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Inclusive upper bound of bucket `i` in seconds; +inf for overflow.
  static double BucketUpperBound(size_t i);

  /// Quantile estimate (q in [0,1]) by linear interpolation inside the
  /// containing bucket, clamped to the observed max. 0 when empty.
  double ApproxQuantile(double q) const;

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

/// One completed trace span, as drained from a thread's ring buffer.
struct SpanRecord {
  uint64_t id = 0;      ///< Registry-unique, nonzero.
  uint64_t parent = 0;  ///< 0 = root.
  std::string name;     ///< e.g. "block 7/uw-itemsets".
  std::string category; ///< e.g. "engine", "counting", "io".
  uint32_t thread = 0;  ///< Small stable per-registry thread index.
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
};

/// \brief Point-in-time copy of every registered metric, sorted by name
/// within each kind — what the TelemetryScraper appends to its timeline.
///
/// Each value is one relaxed atomic read, so a sample taken mid-run is
/// per-metric consistent (every counter monotone across samples, every
/// histogram count equal to its bucket sum) without claiming cross-metric
/// simultaneity — two metrics bumped by one operation can land in
/// different samples.
struct MetricsSample {
  uint64_t t_ns = 0;  ///< NowNanos() at the start of the sweep.
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  struct HistogramRow {
    std::string name;
    uint64_t count = 0;
    double sum = 0.0;
    double max = 0.0;
  };
  std::vector<HistogramRow> histograms;
};

/// Summary row for one histogram (the BENCH_telemetry.json payload).
struct HistogramSummary {
  std::string name;
  uint64_t count = 0;
  double sum = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

enum class TelemetryFormat {
  kChromeTrace,  ///< trace_event JSON, loadable in Perfetto/chrome://tracing.
  kPrometheus,   ///< Prometheus text exposition format.
};

/// \brief Named metrics plus a span tracer. Process-wide via Global() but
/// fully injectable: the MaintenanceEngine owns a private registry by
/// default so concurrent engines (tests!) never share histograms.
///
/// Metric lookup takes a mutex once per name; the returned pointers are
/// stable for the registry's lifetime, so hot paths cache them and touch
/// only atomics. Spans append to per-thread buffers (one mutex per
/// thread, uncontended except while CollectSpans drains).
class TelemetryRegistry {
 public:
  TelemetryRegistry();
  ~TelemetryRegistry();

  TelemetryRegistry(const TelemetryRegistry&) = delete;
  TelemetryRegistry& operator=(const TelemetryRegistry&) = delete;

  /// Find-or-create. Stable pointers; never returns nullptr.
  Counter* counter(std::string_view name) DEMON_EXCLUDES(metrics_mutex_);
  Gauge* gauge(std::string_view name) DEMON_EXCLUDES(metrics_mutex_);
  Histogram* histogram(std::string_view name) DEMON_EXCLUDES(metrics_mutex_);

  /// The metrics-map lock, exposed so other modules can reference it in
  /// lock-order annotations (the ExtentPager declares its own mutex
  /// DEMON_ACQUIRED_BEFORE this one — see DESIGN.md's lock-order table).
  Mutex& metrics_mutex() const DEMON_RETURN_CAPABILITY(metrics_mutex_) {
    return metrics_mutex_;
  }

  /// Next registry-unique span id (nonzero). Used by TraceSpan.
  uint64_t NextSpanId() {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Appends a completed span to the calling thread's ring buffer. When
  /// the ring is full the oldest record is overwritten (and counted).
  void RecordSpan(SpanRecord record) DEMON_EXCLUDES(buffers_mutex_);

  /// Drains every thread's ring buffer into the central span store and
  /// returns the accumulated spans ordered by start time. Spans stay in
  /// the store (repeat exports see the full history) until ClearSpans.
  std::vector<SpanRecord> CollectSpans() DEMON_EXCLUDES(buffers_mutex_);

  /// Spans silently overwritten because a thread's ring filled between
  /// drains. Exposed so exporters can flag truncation.
  uint64_t dropped_spans() const {
    return dropped_spans_.load(std::memory_order_relaxed);
  }

  void ClearSpans() DEMON_EXCLUDES(buffers_mutex_);

  /// Takes a MetricsSample of every registered metric (see the struct
  /// comment for the exact consistency contract). Safe to call while
  /// other threads record — this is the scraper's once-per-period read.
  MetricsSample SnapshotMetrics() const DEMON_EXCLUDES(metrics_mutex_);

  // Export paths. Safe to call while other threads are still recording
  // metrics and spans — a scrape or a --stats_every dump may race the
  // engine mid-block. Metric maps are walked under metrics_mutex_
  // (lookups insert-only; returned pointers stay valid), each histogram
  // is rendered from one Snapshot so its bucket rows always sum to its
  // count, and span collection drains the per-thread rings under their
  // own mutexes. What concurrency costs is only *completeness*: spans
  // still open and metric updates issued after the walk passes them are
  // missing from this export and appear in the next one. Quiesce first
  // for a final, complete export.

  /// Chrome trace_event JSON of CollectSpans().
  std::string ChromeTraceJson() DEMON_EXCLUDES(buffers_mutex_);
  /// Prometheus text exposition of every counter, gauge and histogram.
  std::string PrometheusText() const DEMON_EXCLUDES(metrics_mutex_);
  std::string Export(TelemetryFormat format);

  /// One summary row per histogram, sorted by name.
  std::vector<HistogramSummary> HistogramSummaries() const
      DEMON_EXCLUDES(metrics_mutex_);

  /// The process-wide registry, for instrumentation points with no
  /// injection seam (e.g. TID-list file I/O free functions).
  static TelemetryRegistry& Global();

 private:
  friend class TraceSpan;
  struct ThreadBuffer;

  /// This thread's buffer, creating and caching it on first use.
  ThreadBuffer* BufferForThisThread() DEMON_EXCLUDES(buffers_mutex_);

  const uint64_t registry_id_;  ///< Process-unique; keys thread caches.
  std::atomic<uint64_t> next_span_id_{1};
  std::atomic<uint64_t> dropped_spans_{0};

  mutable Mutex metrics_mutex_;
  std::unordered_map<std::string, std::unique_ptr<Counter>> counters_
      DEMON_GUARDED_BY(metrics_mutex_);
  std::unordered_map<std::string, std::unique_ptr<Gauge>> gauges_
      DEMON_GUARDED_BY(metrics_mutex_);
  std::unordered_map<std::string, std::unique_ptr<Histogram>> histograms_
      DEMON_GUARDED_BY(metrics_mutex_);

  Mutex buffers_mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_
      DEMON_GUARDED_BY(buffers_mutex_);
  /// Drained spans.
  std::vector<SpanRecord> collected_ DEMON_GUARDED_BY(buffers_mutex_);
};

/// \brief RAII span. Construction stamps the start time and picks a
/// parent; destruction stamps the end and files the record.
///
/// Parentage: within one thread, spans nest through a thread-local stack
/// — a span opened while another span of the same registry is live
/// becomes its child. Across threads the stack cannot help (the pool
/// worker's stack is empty), so closures capture the parent's id
/// (DEMON_SPAN_ID) and pass it to the explicit-parent constructor.
///
/// A TraceSpan with a null registry is inert: id() is 0 and nothing is
/// recorded. The no-op macro expansion under DEMON_TELEMETRY=OFF uses
/// the default constructor, which is equivalent.
class TraceSpan {
 public:
  TraceSpan() = default;
  TraceSpan(TelemetryRegistry* registry, std::string name,
            const char* category);
  TraceSpan(TelemetryRegistry* registry, std::string name,
            const char* category, uint64_t parent);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// 0 when inert; otherwise this span's registry-unique id.
  uint64_t id() const { return id_; }

 private:
  void Open(TelemetryRegistry* registry, std::string name,
            const char* category, uint64_t parent);

  TelemetryRegistry* registry_ = nullptr;
  std::string name_;
  const char* category_ = "";
  uint64_t id_ = 0;
  uint64_t parent_ = 0;
  uint64_t start_ns_ = 0;
};

/// \brief Replacement for the bespoke WallTimer-into-a-stats-field
/// pattern: times a scope and records the duration into a histogram (if
/// one is bound — nullptr is fine). Always active regardless of the
/// DEMON_TELEMETRY gate, because MonitorStats and the per-phase stats
/// structs are part of the public contract in every build.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram = nullptr)
      : histogram_(histogram), start_ns_(NowNanos()) {}
  ~ScopedTimer() { Stop(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Stops the timer (idempotently), records into the bound histogram on
  /// the first call, and returns the elapsed seconds.
  double Stop() {
    if (!stopped_) {
      stopped_ = true;
      seconds_ = static_cast<double>(NowNanos() - start_ns_) * 1e-9;
      if (histogram_ != nullptr) histogram_->Record(seconds_);
    }
    return seconds_;
  }

 private:
  Histogram* histogram_;
  uint64_t start_ns_;
  bool stopped_ = false;
  double seconds_ = 0.0;
};

/// Chrome trace_event JSON for an explicit span list (deterministic; the
/// golden exporter tests build SpanRecords by hand and diff the output).
std::string ChromeTraceJson(const std::vector<SpanRecord>& spans);

/// Appends the `ph:"X"` trace events for `spans` (comma-separated, no
/// envelope) to `out`, with timestamps rebased to `base_ns`. `first`
/// tracks whether a comma is needed before the next event; the timeline
/// exporter uses this to merge counter tracks (`ph:"C"`) and spans into
/// one trace with a shared timebase.
void AppendChromeSpanEvents(const std::vector<SpanRecord>& spans,
                            uint64_t base_ns, bool* first, std::string* out);

/// Appends `text` JSON-escaped (no surrounding quotes) to `out`.
void AppendJsonEscaped(std::string_view text, std::string* out);

/// Appends `v` with `%g` formatting (the shared numeric JSON idiom).
void AppendJsonDouble(double v, std::string* out);

}  // namespace demon::telemetry

#if DEMON_TELEMETRY_ENABLED

/// Opens RAII span `var` on `registry` (nullable). Parent = innermost
/// live same-registry span on this thread, if any.
#define DEMON_TRACE_SPAN(var, registry, name, category) \
  ::demon::telemetry::TraceSpan var((registry), (name), (category))

/// Like DEMON_TRACE_SPAN with an explicit parent id — for spans whose
/// parent finished on (or is running on) another thread.
#define DEMON_TRACE_SPAN_UNDER(var, registry, name, category, parent) \
  ::demon::telemetry::TraceSpan var((registry), (name), (category), (parent))

/// The id of a span opened by the macros above (0 when inert).
#define DEMON_SPAN_ID(var) ((var).id())

/// Adds to a cached Counter* (nullable). `n` unevaluated when OFF.
#define DEMON_COUNTER_ADD(counter, n)                 \
  do {                                                \
    if ((counter) != nullptr) (counter)->Add((n));    \
  } while (false)

/// Records into a cached Histogram* (nullable). `v` unevaluated when OFF.
#define DEMON_HISTOGRAM_RECORD(histogram, v)               \
  do {                                                     \
    if ((histogram) != nullptr) (histogram)->Record((v));  \
  } while (false)

#else  // DEMON_TELEMETRY_ENABLED

#define DEMON_TRACE_SPAN(var, registry, name, category) \
  ::demon::telemetry::TraceSpan var
#define DEMON_TRACE_SPAN_UNDER(var, registry, name, category, parent) \
  ::demon::telemetry::TraceSpan var
#define DEMON_SPAN_ID(var) ((var).id())
#define DEMON_COUNTER_ADD(counter, n) \
  do {                                \
  } while (false)
#define DEMON_HISTOGRAM_RECORD(histogram, v) \
  do {                                       \
  } while (false)

#endif  // DEMON_TELEMETRY_ENABLED

#endif  // DEMON_COMMON_TELEMETRY_H_
