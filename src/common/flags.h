#ifndef DEMON_COMMON_FLAGS_H_
#define DEMON_COMMON_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace demon::flags {

/// \brief The one command-line surface of every DEMON binary.
///
/// Before this existed each tool scanned `argv` by hand (demon_cli's ad-hoc
/// map, the benches' prefix matching), so a typo like `--minsop` silently
/// fell back to the default. A FlagSet is declared up front — every flag
/// carries a type, a default and one line of help — and `Parse` then
/// rejects unknown flags (suggesting the nearest registered name), rejects
/// malformed values, and renders `--help` from the declarations. The
/// repo lint (`raw-argv`) bans `argv` indexing outside `src/common/`, so
/// new tools cannot regress to hand-rolled scanning.
///
/// Accepted spellings: `--name=value`, `--name value`, and for booleans a
/// bare `--name`. A single FlagSet is not thread-safe; parse before
/// spawning threads.
class FlagSet {
 public:
  /// `program` and `description` head the --help text.
  FlagSet(std::string program, std::string description)
      : program_(std::move(program)), description_(std::move(description)) {}

  /// \name Declarations (call before Parse; names are unique).
  /// @{
  void DefineString(const std::string& name, const std::string& default_value,
                    const std::string& help);
  void DefineInt(const std::string& name, long default_value,
                 const std::string& help);
  void DefineDouble(const std::string& name, double default_value,
                    const std::string& help);
  void DefineBool(const std::string& name, bool default_value,
                  const std::string& help);
  /// @}

  /// Parses `argv[first..argc)`. Unknown flags, missing values and
  /// unparsable numbers are InvalidArgument (the message names the
  /// closest registered flag for likely typos). `--help` sets
  /// `help_requested()` and stops parsing without error.
  [[nodiscard]] Status Parse(int argc, const char* const* argv, int first = 1);

  /// Like Parse, but leaves arguments it does not recognize in place
  /// (compacting `argv` and updating `*argc`) instead of erroring — for
  /// binaries that forward the remainder to another parser
  /// (google-benchmark). Recognized flags must still parse cleanly.
  [[nodiscard]] Status ParseKnown(int* argc, char** argv, int first = 1);

  /// True once Parse consumed a `--help`.
  bool help_requested() const { return help_requested_; }

  /// The rendered help text: usage line, description, one line per flag
  /// with its type, default and help string.
  std::string HelpText() const;

  /// \name Typed accessors (DEMON_CHECK on unregistered name or wrong
  /// type — a programming error, not user input).
  /// @{
  std::string GetString(const std::string& name) const;
  long GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;
  /// @}

  /// True when the flag appeared on the command line (vs. its default).
  bool Provided(const std::string& name) const;

 private:
  enum class Type { kString, kInt, kDouble, kBool };

  struct Flag {
    Type type = Type::kString;
    std::string help;
    std::string string_value;
    long int_value = 0;
    double double_value = 0.0;
    bool bool_value = false;
    bool provided = false;
  };

  void Define(const std::string& name, Flag flag);
  const Flag& Lookup(const std::string& name, Type type) const;
  [[nodiscard]] Status SetValue(const std::string& name,
                                const std::string& value);
  /// The registered name closest to `name` by edit distance (for the
  /// unknown-flag message); empty when nothing is remotely close.
  std::string ClosestName(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Flag> registered_;
  bool help_requested_ = false;
};

/// The `index`-th positional argument (0 = program name), or `fallback`
/// when absent — how subcommand drivers read the command word without
/// indexing `argv` themselves.
std::string Positional(int argc, const char* const* argv, int index,
                       const std::string& fallback = "");

}  // namespace demon::flags

#endif  // DEMON_COMMON_FLAGS_H_
