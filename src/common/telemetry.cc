#include "common/telemetry.h"

#include <time.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <thread>
#include <utility>

namespace demon::telemetry {
namespace {

/// Per-thread ring capacity. 32k spans outlive any bench block burst;
/// overflow overwrites the oldest record and bumps dropped_spans().
constexpr size_t kRingCapacity = 1 << 15;

std::atomic<uint64_t> g_next_registry_id{1};

/// One thread's view of one registry, for the buffer fast path.
struct BufferCacheEntry {
  uint64_t registry_id;
  void* buffer;
};

/// One live span on this thread, for same-thread parent inference.
struct StackEntry {
  uint64_t registry_id;
  uint64_t span_id;
};

thread_local std::vector<BufferCacheEntry> tls_buffer_cache;
thread_local std::vector<StackEntry> tls_span_stack;

/// Maps v (seconds) to its bucket index.
size_t BucketIndexFor(double v) {
  constexpr double kMin = 1e-7;
  if (!(v >= kMin)) return 0;  // underflow; also catches NaN and negatives
  const double offset =
      static_cast<double>(Histogram::kBucketsPerDecade) *
      (std::log10(v) - Histogram::kMinExponent);
  const size_t index = 1 + static_cast<size_t>(offset);
  return std::min(index, Histogram::kNumBuckets - 1);
}



/// Prometheus metric name: `demon_` + name with every run of characters
/// outside [a-zA-Z0-9_] collapsed to one underscore.
std::string PrometheusName(std::string_view name) {
  std::string out = "demon_";
  bool last_was_underscore = true;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    if (ok) {
      out.push_back(c);
      last_was_underscore = false;
    } else if (!last_was_underscore) {
      out.push_back('_');
      last_was_underscore = true;
    }
  }
  while (!out.empty() && out.back() == '_') out.pop_back();
  return out;
}

template <typename Map>
std::vector<std::string> SortedKeys(const Map& map) {
  std::vector<std::string> keys;
  keys.reserve(map.size());
  for (const auto& [key, value] : map) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace

// Public so the timeline exporter (telemetry_timeline.cc) renders JSONL
// and counter tracks with the same escaping and numeric formatting.
void AppendJsonEscaped(std::string_view text, std::string* out) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

void AppendJsonDouble(double v, std::string* out) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  out->append(buf);
}

namespace {
// Local alias retained for the Prometheus exporter below.
void AppendDouble(double v, std::string* out) { AppendJsonDouble(v, out); }
}  // namespace

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t ThreadCpuNanos() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  struct timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
#else
  return 0;
#endif
}

void Histogram::Record(double v) {
  buckets_[BucketIndexFor(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(sum_, v);
  AtomicMaxDouble(max_, v);
}

double Histogram::BucketUpperBound(size_t i) {
  if (i >= kNumBuckets - 1) return std::numeric_limits<double>::infinity();
  return std::pow(10.0, kMinExponent +
                            static_cast<double>(i) /
                                static_cast<double>(kBucketsPerDecade));
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot snapshot;
  // Buckets first: Record() bumps the bucket before count_/sum_, so a
  // count derived from the bucket sum is self-consistent (cumulative
  // bucket rows always add up to it) and monotone across snapshots.
  for (size_t i = 0; i < kNumBuckets; ++i) {
    snapshot.buckets[i] = bucket_count(i);
    snapshot.count += snapshot.buckets[i];
  }
  snapshot.sum = sum();
  snapshot.max = max();
  return snapshot;
}

double Histogram::Snapshot::ApproxQuantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  double cumulative = 0.0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    const uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    const double next = cumulative + static_cast<double>(in_bucket);
    if (next >= rank) {
      const double upper = BucketUpperBound(i);
      if (std::isinf(upper)) return max;
      const double lower = i == 0 ? 0.0 : BucketUpperBound(i - 1);
      const double fraction =
          (rank - cumulative) / static_cast<double>(in_bucket);
      return std::min(lower + fraction * (upper - lower), max);
    }
    cumulative = next;
  }
  return max;
}

double Histogram::ApproxQuantile(double q) const {
  return TakeSnapshot().ApproxQuantile(q);
}

/// A bounded span ring owned by (registry, thread). The mutex is only
/// contended while CollectSpans drains; the owning thread otherwise
/// takes it uncontended (a couple of atomic ops). `owner` and
/// `thread_index` are written once, under `registry->buffers_mutex_`,
/// before the buffer pointer escapes; afterwards they are immutable.
struct TelemetryRegistry::ThreadBuffer {
  std::thread::id owner;
  uint32_t thread_index = 0;
  /// Back-pointer anchoring the lock-order declaration below; set at
  /// creation, never changed.
  TelemetryRegistry* registry = nullptr;
  /// CollectSpans holds the registry-wide buffers_mutex_ while draining
  /// each per-thread ring, so ring locks nest inside it.
  Mutex mutex DEMON_ACQUIRED_AFTER(registry->buffers_mutex_);
  std::vector<SpanRecord> ring DEMON_GUARDED_BY(mutex);
  size_t write_cursor DEMON_GUARDED_BY(mutex) = 0;  ///< Next overwrite slot.
  bool wrapped DEMON_GUARDED_BY(mutex) = false;
};

TelemetryRegistry::TelemetryRegistry()
    : registry_id_(g_next_registry_id.fetch_add(1)) {}

TelemetryRegistry::~TelemetryRegistry() = default;

TelemetryRegistry& TelemetryRegistry::Global() {
  static TelemetryRegistry* global = new TelemetryRegistry();  // lint:allow(naked-new): intentionally leaked process singleton
  return *global;
}

Counter* TelemetryRegistry::counter(std::string_view name) {
  MutexLock lock(metrics_mutex_);
  auto& slot = counters_[std::string(name)];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* TelemetryRegistry::gauge(std::string_view name) {
  MutexLock lock(metrics_mutex_);
  auto& slot = gauges_[std::string(name)];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* TelemetryRegistry::histogram(std::string_view name) {
  MutexLock lock(metrics_mutex_);
  auto& slot = histograms_[std::string(name)];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

TelemetryRegistry::ThreadBuffer* TelemetryRegistry::BufferForThisThread() {
  for (const BufferCacheEntry& entry : tls_buffer_cache) {
    if (entry.registry_id == registry_id_) {
      return static_cast<ThreadBuffer*>(entry.buffer);
    }
  }
  MutexLock lock(buffers_mutex_);
  const std::thread::id self = std::this_thread::get_id();
  ThreadBuffer* buffer = nullptr;
  for (const auto& candidate : buffers_) {
    if (candidate->owner == self) {
      buffer = candidate.get();
      break;
    }
  }
  if (buffer == nullptr) {
    buffers_.push_back(std::make_unique<ThreadBuffer>());
    buffer = buffers_.back().get();
    buffer->owner = self;
    buffer->thread_index = static_cast<uint32_t>(buffers_.size() - 1);
    buffer->registry = this;
    MutexLock buffer_lock(buffer->mutex);
    buffer->ring.reserve(64);
  }
  // Entries for destroyed registries are unreachable (ids are never
  // reused), so wholesale eviction is safe and keeps the cache tiny.
  if (tls_buffer_cache.size() >= 64) tls_buffer_cache.clear();
  tls_buffer_cache.push_back({registry_id_, buffer});
  return buffer;
}

void TelemetryRegistry::RecordSpan(SpanRecord record) {
  ThreadBuffer* buffer = BufferForThisThread();
  MutexLock lock(buffer->mutex);
  record.thread = buffer->thread_index;
  if (buffer->ring.size() < kRingCapacity) {
    buffer->ring.push_back(std::move(record));
    return;
  }
  buffer->ring[buffer->write_cursor] = std::move(record);
  buffer->write_cursor = (buffer->write_cursor + 1) % kRingCapacity;
  buffer->wrapped = true;
  dropped_spans_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<SpanRecord> TelemetryRegistry::CollectSpans() {
  MutexLock lock(buffers_mutex_);
  for (const auto& owned : buffers_) {
    ThreadBuffer* buffer = owned.get();
    MutexLock buffer_lock(buffer->mutex);
    if (buffer->wrapped) {
      // Oldest record sits at the write cursor once the ring has wrapped.
      std::rotate(buffer->ring.begin(),
                  buffer->ring.begin() +
                      static_cast<std::ptrdiff_t>(buffer->write_cursor),
                  buffer->ring.end());
    }
    for (SpanRecord& record : buffer->ring) {
      collected_.push_back(std::move(record));
    }
    buffer->ring.clear();
    buffer->write_cursor = 0;
    buffer->wrapped = false;
  }
  std::stable_sort(collected_.begin(), collected_.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     return a.start_ns < b.start_ns;
                   });
  return collected_;
}

void TelemetryRegistry::ClearSpans() {
  CollectSpans();
  MutexLock lock(buffers_mutex_);
  collected_.clear();
}

void AppendChromeSpanEvents(const std::vector<SpanRecord>& spans,
                            uint64_t base_ns, bool* first, std::string* out) {
  char buf[96];
  for (const SpanRecord& span : spans) {
    if (!*first) out->push_back(',');
    *first = false;
    out->append("\n{\"name\":\"");
    AppendJsonEscaped(span.name, out);
    out->append("\",\"cat\":\"");
    AppendJsonEscaped(span.category, out);
    // ph:"X" complete events; ts/dur in microseconds per the trace_event
    // spec, rebased to the earliest span so Perfetto opens near t=0.
    const double ts_us =
        static_cast<double>(span.start_ns - base_ns) / 1000.0;
    const double dur_us =
        static_cast<double>(span.end_ns - span.start_ns) / 1000.0;
    std::snprintf(buf, sizeof(buf),
                  "\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,"
                  "\"tid\":%u,",
                  ts_us, dur_us, span.thread);
    out->append(buf);
    std::snprintf(buf, sizeof(buf),
                  "\"args\":{\"span\":%llu,\"parent\":%llu}}",
                  static_cast<unsigned long long>(span.id),
                  static_cast<unsigned long long>(span.parent));
    out->append(buf);
  }
}

std::string ChromeTraceJson(const std::vector<SpanRecord>& spans) {
  uint64_t base_ns = std::numeric_limits<uint64_t>::max();
  for (const SpanRecord& span : spans) {
    base_ns = std::min(base_ns, span.start_ns);
  }
  if (spans.empty()) base_ns = 0;

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  AppendChromeSpanEvents(spans, base_ns, &first, &out);
  out.append("\n]}\n");
  return out;
}

std::string TelemetryRegistry::ChromeTraceJson() {
  return telemetry::ChromeTraceJson(CollectSpans());
}

std::string TelemetryRegistry::PrometheusText() const {
  MutexLock lock(metrics_mutex_);
  std::string out;
  for (const std::string& key : SortedKeys(counters_)) {
    std::string name = PrometheusName(key);
    if (name.size() < 6 || name.compare(name.size() - 6, 6, "_total") != 0) {
      name += "_total";
    }
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(counters_.at(key)->value()) + "\n";
  }
  for (const std::string& key : SortedKeys(gauges_)) {
    const std::string name = PrometheusName(key);
    out += "# TYPE " + name + " gauge\n";
    out += name + " ";
    AppendDouble(gauges_.at(key)->value(), &out);
    out.push_back('\n');
  }
  for (const std::string& key : SortedKeys(histograms_)) {
    // One Snapshot per histogram: a concurrent Record() can no longer
    // leave the rendered bucket rows disagreeing with _count.
    const Histogram::Snapshot snapshot = histograms_.at(key)->TakeSnapshot();
    const std::string name = PrometheusName(key);
    out += "# TYPE " + name + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      cumulative += snapshot.buckets[i];
      const double upper = Histogram::BucketUpperBound(i);
      out += name + "_bucket{le=\"";
      if (std::isinf(upper)) {
        out += "+Inf";
      } else {
        AppendDouble(upper, &out);
      }
      out += "\"} " + std::to_string(cumulative) + "\n";
    }
    out += name + "_sum ";
    AppendDouble(snapshot.sum, &out);
    out.push_back('\n');
    out += name + "_count " + std::to_string(snapshot.count) + "\n";
  }
  return out;
}

MetricsSample TelemetryRegistry::SnapshotMetrics() const {
  MetricsSample sample;
  sample.t_ns = NowNanos();
  MutexLock lock(metrics_mutex_);
  sample.counters.reserve(counters_.size());
  for (const std::string& key : SortedKeys(counters_)) {
    sample.counters.emplace_back(key, counters_.at(key)->value());
  }
  sample.gauges.reserve(gauges_.size());
  for (const std::string& key : SortedKeys(gauges_)) {
    sample.gauges.emplace_back(key, gauges_.at(key)->value());
  }
  sample.histograms.reserve(histograms_.size());
  for (const std::string& key : SortedKeys(histograms_)) {
    const Histogram::Snapshot snapshot = histograms_.at(key)->TakeSnapshot();
    MetricsSample::HistogramRow row;
    row.name = key;
    row.count = snapshot.count;
    row.sum = snapshot.sum;
    row.max = snapshot.max;
    sample.histograms.push_back(std::move(row));
  }
  return sample;
}

std::string TelemetryRegistry::Export(TelemetryFormat format) {
  switch (format) {
    case TelemetryFormat::kChromeTrace:
      return ChromeTraceJson();
    case TelemetryFormat::kPrometheus:
      return PrometheusText();
  }
  return "";
}

std::vector<HistogramSummary> TelemetryRegistry::HistogramSummaries() const {
  MutexLock lock(metrics_mutex_);
  std::vector<HistogramSummary> rows;
  rows.reserve(histograms_.size());
  for (const std::string& key : SortedKeys(histograms_)) {
    // One Snapshot per row, so count and quantiles describe the same
    // point in time even while other threads record.
    const Histogram::Snapshot snapshot = histograms_.at(key)->TakeSnapshot();
    HistogramSummary row;
    row.name = key;
    row.count = snapshot.count;
    row.sum = snapshot.sum;
    row.p50 = snapshot.ApproxQuantile(0.5);
    row.p95 = snapshot.ApproxQuantile(0.95);
    row.max = snapshot.max;
    rows.push_back(std::move(row));
  }
  return rows;
}

TraceSpan::TraceSpan(TelemetryRegistry* registry, std::string name,
                     const char* category) {
  if (registry == nullptr) return;
  uint64_t parent = 0;
  for (auto it = tls_span_stack.rbegin(); it != tls_span_stack.rend(); ++it) {
    if (it->registry_id == registry->registry_id_) {
      parent = it->span_id;
      break;
    }
  }
  Open(registry, std::move(name), category, parent);
}

TraceSpan::TraceSpan(TelemetryRegistry* registry, std::string name,
                     const char* category, uint64_t parent) {
  if (registry == nullptr) return;
  Open(registry, std::move(name), category, parent);
}

void TraceSpan::Open(TelemetryRegistry* registry, std::string name,
                     const char* category, uint64_t parent) {
  registry_ = registry;
  name_ = std::move(name);
  category_ = category;
  parent_ = parent;
  id_ = registry->NextSpanId();
  tls_span_stack.push_back({registry->registry_id_, id_});
  start_ns_ = NowNanos();
}

TraceSpan::~TraceSpan() {
  if (registry_ == nullptr) return;
  const uint64_t end_ns = NowNanos();
  for (auto it = tls_span_stack.rbegin(); it != tls_span_stack.rend(); ++it) {
    if (it->span_id == id_ && it->registry_id == registry_->registry_id_) {
      tls_span_stack.erase(std::next(it).base());
      break;
    }
  }
  SpanRecord record;
  record.id = id_;
  record.parent = parent_;
  record.name = std::move(name_);
  record.category = category_;
  record.start_ns = start_ns_;
  record.end_ns = end_ns;
  registry_->RecordSpan(std::move(record));
}

}  // namespace demon::telemetry
