#ifndef DEMON_CLUSTERING_CLUSTER_MODEL_H_
#define DEMON_CLUSTERING_CLUSTER_MODEL_H_

#include <vector>

#include "clustering/cluster_feature.h"
#include "data/block.h"
#include "data/point.h"

namespace demon {

/// \brief The cluster model DEMON maintains: all clusters identified in
/// the data (paper §3), each summarized by a cluster feature (count,
/// centroid, radius). Obtained by BIRCH phase 2 from the sub-clusters.
class ClusterModel {
 public:
  ClusterModel() = default;

  explicit ClusterModel(std::vector<ClusterFeature> clusters)
      : clusters_(std::move(clusters)) {}

  const std::vector<ClusterFeature>& clusters() const { return clusters_; }
  size_t NumClusters() const { return clusters_.size(); }
  bool empty() const { return clusters_.empty(); }

  /// Total points summarized across clusters.
  double TotalWeight() const {
    double total = 0.0;
    for (const auto& cf : clusters_) total += cf.n();
    return total;
  }

  /// Index of the cluster whose centroid is closest to `point`.
  /// Requires a non-empty model.
  int Assign(const double* point, size_t dim) const;

  /// Centroids of all clusters.
  std::vector<Point> Centroids() const {
    std::vector<Point> out;
    out.reserve(clusters_.size());
    for (const auto& cf : clusters_) out.push_back(cf.Centroid());
    return out;
  }

 private:
  std::vector<ClusterFeature> clusters_;
};

/// \brief The membership scan of §3.1.2: labels every point of a block
/// with the cluster it belongs to (second scan; characteristic of all
/// summary-based clustering algorithms).
std::vector<int> LabelBlock(const PointBlock& block,
                            const ClusterModel& model);

}  // namespace demon

#endif  // DEMON_CLUSTERING_CLUSTER_MODEL_H_
