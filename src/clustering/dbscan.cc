#include "clustering/dbscan.h"

#include <cmath>
#include <cstring>

#include "common/check.h"
#include "data/point.h"

namespace demon {

namespace {

// Hashes a grid cell coordinate vector into a key. Cells are eps-sized,
// so all neighbors of a point lie within the 3^d surrounding cells.
uint64_t HashCells(const std::vector<int64_t>& cell) {
  uint64_t h = 1469598103934665603ULL;
  for (int64_t c : cell) {
    h ^= static_cast<uint64_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

IncrementalDbscan::IncrementalDbscan(size_t dim, const DbscanParams& params)
    : dim_(dim), params_(params) {
  DEMON_CHECK(dim_ >= 1);
  DEMON_CHECK(params_.eps > 0.0);
  DEMON_CHECK(params_.min_pts >= 1);
}

IncrementalDbscan::CellKey IncrementalDbscan::KeyOf(
    const double* point) const {
  std::vector<int64_t> cell(dim_);
  for (size_t d = 0; d < dim_; ++d) {
    cell[d] = static_cast<int64_t>(std::floor(point[d] / params_.eps));
  }
  return HashCells(cell);
}

void IncrementalDbscan::Neighbors(const double* point, size_t exclude,
                                  std::vector<size_t>* out) const {
  out->clear();
  const double eps2 = params_.eps * params_.eps;
  // Enumerate the 3^d neighboring cells.
  std::vector<int64_t> base(dim_);
  for (size_t d = 0; d < dim_; ++d) {
    base[d] = static_cast<int64_t>(std::floor(point[d] / params_.eps));
  }
  std::vector<int64_t> cell(dim_);
  size_t total = 1;
  for (size_t d = 0; d < dim_; ++d) total *= 3;
  for (size_t mask = 0; mask < total; ++mask) {
    size_t rest = mask;
    for (size_t d = 0; d < dim_; ++d) {
      cell[d] = base[d] + static_cast<int64_t>(rest % 3) - 1;
      rest /= 3;
    }
    const auto it = grid_.find(HashCells(cell));
    if (it == grid_.end()) continue;
    for (size_t index : it->second) {
      if (index == exclude) continue;
      if (SquaredDistance(point, PointAt(index), dim_) <= eps2) {
        out->push_back(index);
      }
    }
  }
}

size_t IncrementalDbscan::Find(size_t x) const {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];
    x = parent_[x];
  }
  return x;
}

void IncrementalDbscan::Union(size_t a, size_t b) {
  a = Find(a);
  b = Find(b);
  if (a == b) return;
  if (rank_[a] < rank_[b]) std::swap(a, b);
  parent_[b] = a;
  if (rank_[a] == rank_[b]) ++rank_[a];
}

size_t IncrementalDbscan::Insert(const double* point) {
  const size_t index = num_points_++;
  coords_.insert(coords_.end(), point, point + dim_);
  parent_.push_back(index);
  rank_.push_back(0);

  std::vector<size_t> neighbors;
  Neighbors(point, /*exclude=*/SIZE_MAX, &neighbors);
  grid_[KeyOf(point)].push_back(index);

  neighbor_counts_.push_back(neighbors.size() + 1);  // + itself
  core_.push_back(neighbor_counts_[index] >= params_.min_pts);

  std::vector<size_t> second_order;
  for (size_t n : neighbors) {
    ++neighbor_counts_[n];
    if (!core_[n] && neighbor_counts_[n] >= params_.min_pts) {
      // The insertion promoted this neighbor to core: connect it to every
      // core in ITS neighborhood (its edges existed but were dormant).
      core_[n] = true;
      Neighbors(PointAt(n), /*exclude=*/n, &second_order);
      for (size_t m : second_order) {
        if (core_[m]) Union(n, m);
      }
    }
  }
  if (core_[index]) {
    for (size_t n : neighbors) {
      if (core_[n]) Union(index, n);
    }
  }
  return index;
}

void IncrementalDbscan::AddBlock(const PointBlock& block) {
  DEMON_CHECK(block.dim() == dim_);
  for (size_t i = 0; i < block.size(); ++i) Insert(block.PointAt(i));
}

DbscanResult IncrementalDbscan::Label() const {
  DbscanResult result;
  result.labels.assign(num_points_, -1);
  // Dense cluster ids for core components, in order of first appearance
  // by point index (deterministic).
  std::unordered_map<size_t, int> component_to_cluster;
  for (size_t i = 0; i < num_points_; ++i) {
    if (!core_[i]) continue;
    const size_t root = Find(i);
    auto [it, inserted] = component_to_cluster.emplace(
        root, static_cast<int>(component_to_cluster.size()));
    result.labels[i] = it->second;
  }
  result.num_clusters = component_to_cluster.size();

  // Border points: cluster of the lowest-indexed neighboring core.
  std::vector<size_t> neighbors;
  for (size_t i = 0; i < num_points_; ++i) {
    if (core_[i]) continue;
    Neighbors(PointAt(i), /*exclude=*/i, &neighbors);
    size_t best = SIZE_MAX;
    for (size_t n : neighbors) {
      if (core_[n] && n < best) best = n;
    }
    if (best != SIZE_MAX) result.labels[i] = result.labels[best];
  }
  return result;
}

DbscanResult Dbscan(const std::vector<double>& coords, size_t dim,
                    const DbscanParams& params) {
  // The batch algorithm is the insert-only incremental one fed all points;
  // both produce the canonical deterministic labeling, and the test suite
  // additionally checks the incremental path against a brute-force
  // neighborhood implementation.
  IncrementalDbscan incremental(dim, params);
  DEMON_CHECK(coords.size() % dim == 0);
  for (size_t offset = 0; offset < coords.size(); offset += dim) {
    incremental.Insert(coords.data() + offset);
  }
  return incremental.Label();
}

}  // namespace demon
