#ifndef DEMON_CLUSTERING_DBSCAN_H_
#define DEMON_CLUSTERING_DBSCAN_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "data/block.h"

namespace demon {

/// DBScan parameters [EKX95]: the eps-neighborhood radius and the core
/// threshold (a point is core when its eps-neighborhood, itself included,
/// holds at least min_pts points).
struct DbscanParams {
  double eps = 1.0;
  size_t min_pts = 5;
};

/// \brief Result of a clustering: per-point labels (cluster id >= 0, or
/// -1 for noise) and the number of clusters.
struct DbscanResult {
  std::vector<int> labels;
  size_t num_clusters = 0;
};

/// \brief Batch DBScan over a flat point array (row-major, `dim` doubles
/// per point). Border points are assigned to the cluster of their
/// lowest-indexed neighboring core point, making the labeling
/// deterministic and order-independent (classic DBScan leaves border
/// assignment to visit order; pinning it lets the incremental variant be
/// compared bit-for-bit).
DbscanResult Dbscan(const std::vector<double>& coords, size_t dim,
                    const DbscanParams& params);

/// \brief Incremental DBScan under insertions (Ester et al. [EKS+98], the
/// algorithm §3.2.4 cites): new points update neighbor counts, may turn
/// neighbors into cores, and core-core edges only ever get *added* — so
/// cluster merges are union-find unions and insertion is cheap. Deletion
/// would require splitting connected components (the expensive direction
/// the paper calls out); DEMON's answer is GEMM, which never deletes, so
/// this implementation is insert-only and satisfies the GEMM maintainer
/// concept via AddBlock.
///
/// After any sequence of insertions, Label() output equals batch Dbscan
/// over the same points — the invariant the test suite checks.
class IncrementalDbscan {
 public:
  IncrementalDbscan(size_t dim, const DbscanParams& params);

  /// Inserts one point (dim doubles); returns its index.
  size_t Insert(const double* point);

  /// Inserts every point of a block (GEMM maintainer surface).
  void AddBlock(const PointBlock& block);
  void AddBlock(const std::shared_ptr<const PointBlock>& block) {
    AddBlock(*block);
  }

  size_t NumPoints() const { return num_points_; }
  size_t dim() const { return dim_; }

  /// True if point `index` is currently a core point.
  bool IsCore(size_t index) const { return core_[index]; }

  /// Current labels (cluster id per point, -1 noise) and cluster count.
  DbscanResult Label() const;

 private:
  using CellKey = uint64_t;

  CellKey KeyOf(const double* point) const;
  /// Indices of points within eps of `point` (excluding `exclude`,
  /// pass SIZE_MAX for none).
  void Neighbors(const double* point, size_t exclude,
                 std::vector<size_t>* out) const;
  const double* PointAt(size_t index) const {
    return coords_.data() + index * dim_;
  }

  // Union-find over points (only cores participate in unions).
  size_t Find(size_t x) const;
  void Union(size_t a, size_t b);

  size_t dim_;
  DbscanParams params_;
  std::vector<double> coords_;
  size_t num_points_ = 0;
  std::unordered_map<CellKey, std::vector<size_t>> grid_;
  std::vector<size_t> neighbor_counts_;  // |N_eps(p)| including p
  std::vector<bool> core_;
  mutable std::vector<size_t> parent_;
  std::vector<size_t> rank_;
};

}  // namespace demon

#endif  // DEMON_CLUSTERING_DBSCAN_H_
