#ifndef DEMON_CLUSTERING_CF_TREE_H_
#define DEMON_CLUSTERING_CF_TREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "clustering/cluster_feature.h"
#include "common/audit.h"
#include "common/telemetry.h"
#include "data/block.h"
#include "persistence/serializer.h"

namespace demon {

/// Configuration of a CF-tree (BIRCH phase 1).
struct CFTreeOptions {
  /// Maximum entries in an internal node (branching factor B).
  size_t branching = 16;
  /// Maximum entries in a leaf node (L).
  size_t leaf_capacity = 32;
  /// The tree rebuilds with a larger threshold whenever the number of leaf
  /// entries (sub-clusters) exceeds this — the "memory limit" of BIRCH.
  size_t max_leaf_entries = 2048;
  /// Initial absorption threshold T (radius); 0 means "absorb only
  /// coincident points" and lets the tree derive a data-driven T at the
  /// first rebuild.
  double initial_threshold = 0.0;
};

/// \brief BIRCH's height-balanced CF-tree [ZRL96]: leaf entries are
/// sub-clusters summarized by cluster features; internal entries summarize
/// their subtrees. A new point descends to the closest leaf entry and is
/// absorbed if the merged sub-cluster's radius stays within the threshold
/// T; otherwise it starts a new entry, splitting nodes that overflow.
///
/// When the tree outgrows `max_leaf_entries` it is rebuilt with a larger T
/// by reinserting the existing sub-clusters — BIRCH's standard rebuild,
/// which never rescans the data. Insertion is deterministic, so suspending
/// and resuming phase 1 across blocks (BIRCH+, paper §3.1.2) yields
/// exactly the tree a single pass over the concatenated data would.
class CFTree {
 public:
  CFTree(size_t dim, const CFTreeOptions& options);

  CFTree(const CFTree&) = delete;
  CFTree& operator=(const CFTree&) = delete;
  CFTree(CFTree&&) = default;
  CFTree& operator=(CFTree&&) = default;

  /// Inserts one point (dim() doubles).
  void Insert(const double* point);

  /// Inserts every point of a block.
  void InsertBlock(const PointBlock& block);

  /// The current sub-clusters (all leaf entries), in leaf order.
  std::vector<ClusterFeature> LeafEntries() const;

  size_t dim() const { return dim_; }
  double threshold() const { return threshold_; }
  size_t num_leaf_entries() const { return num_leaf_entries_; }
  /// Total points inserted.
  double total_weight() const { return root_cf_.n(); }
  /// Number of rebuilds performed so far.
  size_t num_rebuilds() const { return num_rebuilds_; }

  /// Binds `registry` (not owned; nullable) for block-insert and rebuild
  /// spans plus the `cftree/{points_inserted,rebuilds}` counters and the
  /// `cftree/rebuild_seconds` histogram. Per-point Insert stays
  /// uninstrumented — InsertBlock records the batch. No-op in
  /// DEMON_TELEMETRY=OFF builds.
  void set_telemetry([[maybe_unused]] telemetry::TelemetryRegistry* registry) {
    if constexpr (telemetry::kEnabled) {
      telemetry_ = registry;
      points_inserted_ = registry == nullptr
                             ? nullptr
                             : registry->counter("cftree/points_inserted");
      rebuilds_ =
          registry == nullptr ? nullptr : registry->counter("cftree/rebuilds");
      rebuild_hist_ = registry == nullptr
                          ? nullptr
                          : registry->histogram("cftree/rebuild_seconds");
    }
  }

  /// Deep structural audit (the CF additivity invariants of [ZRL96] that
  /// BIRCH+ §3.1.2 relies on): every leaf entry a valid CF (N >= 1,
  /// SS >= |LS|²/N up to rounding), every internal entry the exact merge
  /// of its child's entries, nodes within their capacity with entries and
  /// children parallel, all leaves at one depth (height balance), leaf
  /// count and root CF consistent with the tree. Appends violations to
  /// `audit`.
  void AuditInto(audit::AuditResult* audit) const;

  /// Test-only: applies `fn` to the `index`-th leaf entry (leaf order), so
  /// corruption-injection tests can break a CF invariant and assert the
  /// auditor reports it.
  void MutateLeafEntryForTest(size_t index,
                              const std::function<void(ClusterFeature*)>& fn);

  /// Serializes the tree's dynamic state (threshold, rebuild count, root
  /// CF, and the full node structure). The configuration (dim, options)
  /// comes from the constructor on restore.
  void SaveState(persistence::Writer& w) const;

  /// Restores state saved by SaveState into a freshly constructed tree of
  /// the same dim/options. Corruption latches a DataLoss on `r`.
  void LoadState(persistence::Reader& r);

 private:
  struct Node;
  using NodePtr = std::unique_ptr<Node>;

  struct Node {
    bool is_leaf = true;
    std::vector<ClusterFeature> entries;
    /// Children, parallel to `entries`; empty for leaves.
    std::vector<NodePtr> children;
  };

  /// Outcome of a recursive insert: if the child split, `new_entry` and
  /// `new_child` describe the sibling to add at the parent level.
  struct InsertResult {
    bool split = false;
    ClusterFeature new_entry;
    NodePtr new_child;
  };

  void SaveNode(persistence::Writer& w, const Node& node) const;
  NodePtr LoadNode(persistence::Reader& r, size_t depth);

  InsertResult InsertCF(Node* node, const ClusterFeature& cf);
  size_t ClosestEntry(const Node& node, const ClusterFeature& cf) const;
  /// Splits `node` in two using the farthest-pair seeding of BIRCH;
  /// returns the new sibling and its summary CF.
  InsertResult Split(Node* node);
  void CollectLeafEntries(const Node& node,
                          std::vector<ClusterFeature>* out) const;
  /// Rebuilds with a larger threshold until the size limit is respected.
  void RebuildWithLargerThreshold();
  /// Smallest distance between two entries sharing a leaf — the rebuild
  /// threshold heuristic.
  double MinLeafEntryDistance(const Node& node) const;

  size_t dim_;
  CFTreeOptions options_;
  double threshold_;
  NodePtr root_;
  ClusterFeature root_cf_;
  size_t num_leaf_entries_ = 0;
  size_t num_rebuilds_ = 0;
  /// All null in DEMON_TELEMETRY=OFF builds (see set_telemetry).
  telemetry::TelemetryRegistry* telemetry_ = nullptr;
  telemetry::Counter* points_inserted_ = nullptr;
  telemetry::Counter* rebuilds_ = nullptr;
  telemetry::Histogram* rebuild_hist_ = nullptr;
};

}  // namespace demon

#endif  // DEMON_CLUSTERING_CF_TREE_H_
