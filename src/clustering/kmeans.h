#ifndef DEMON_CLUSTERING_KMEANS_H_
#define DEMON_CLUSTERING_KMEANS_H_

#include <cstdint>
#include <vector>

#include "data/point.h"

namespace demon {

/// Result of a weighted k-means run.
struct KMeansResult {
  std::vector<Point> centroids;
  /// Cluster index of each input point.
  std::vector<int> assignments;
  /// Weighted sum of squared distances to assigned centroids.
  double cost = 0.0;
  size_t iterations = 0;
};

/// \brief Weighted Lloyd's k-means with k-means++ seeding.
///
/// This is one of the "traditional clustering algorithms" BIRCH phase 2
/// applies to the in-memory sub-clusters: each input point is a
/// sub-cluster centroid weighted by its point count, so the result
/// approximates k-means over the full data (paper §3.1.2, [ZRL96]).
///
/// `weights` may be empty (all ones). If there are fewer distinct points
/// than k, surplus centroids duplicate existing ones and end up empty.
KMeansResult WeightedKMeans(const std::vector<Point>& points,
                            const std::vector<double>& weights, size_t k,
                            uint64_t seed, size_t max_iterations = 100);

}  // namespace demon

#endif  // DEMON_CLUSTERING_KMEANS_H_
