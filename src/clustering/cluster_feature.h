#ifndef DEMON_CLUSTERING_CLUSTER_FEATURE_H_
#define DEMON_CLUSTERING_CLUSTER_FEATURE_H_

#include <cmath>
#include <vector>

#include "common/check.h"
#include "data/point.h"

namespace demon {

/// \brief A BIRCH cluster feature [ZRL96]: the triple (N, LS, SS) — point
/// count, linear sum and squared sum of a set of d-dimensional points.
///
/// CFs are additive: the CF of a union of point sets is the component-wise
/// sum. This is what makes the set of sub-clusters incrementally
/// maintainable, the property BIRCH+ exploits (paper §3.1.2).
class ClusterFeature {
 public:
  ClusterFeature() = default;

  explicit ClusterFeature(size_t dim) : ls_(dim, 0.0) {}

  /// CF of a single point.
  static ClusterFeature FromPoint(const double* point, size_t dim) {
    ClusterFeature cf(dim);
    cf.Add(point, dim);
    return cf;
  }

  /// Reassembles a CF from its serialized components (checkpoint restore).
  /// Callers validate n/ls/ss consistency; the deep audit re-checks the
  /// SS >= |LS|²/N invariant afterwards.
  static ClusterFeature FromRaw(double n, std::vector<double> ls, double ss) {
    ClusterFeature cf;
    cf.n_ = n;
    cf.ls_ = std::move(ls);
    cf.ss_ = ss;
    return cf;
  }

  size_t dim() const { return ls_.size(); }
  double n() const { return n_; }
  const std::vector<double>& ls() const { return ls_; }
  double ss() const { return ss_; }
  bool empty() const { return n_ == 0.0; }

  /// Adds one point.
  void Add(const double* point, size_t dim) {
    DEMON_CHECK(dim == ls_.size());
    n_ += 1.0;
    for (size_t i = 0; i < dim; ++i) {
      ls_[i] += point[i];
      ss_ += point[i] * point[i];
    }
  }

  /// Merges another CF into this one (CF additivity theorem).
  void Merge(const ClusterFeature& other) {
    DEMON_CHECK(other.ls_.size() == ls_.size());
    n_ += other.n_;
    for (size_t i = 0; i < ls_.size(); ++i) ls_[i] += other.ls_[i];
    ss_ += other.ss_;
  }

  /// Centroid LS / N. Requires a non-empty CF.
  Point Centroid() const {
    DEMON_CHECK(n_ > 0.0);
    Point c(ls_.size());
    for (size_t i = 0; i < ls_.size(); ++i) c[i] = ls_[i] / n_;
    return c;
  }

  /// Squared radius: average squared distance of the members to the
  /// centroid, SS/N - ||LS/N||^2 (clamped at 0 against rounding).
  double SquaredRadius() const {
    DEMON_CHECK(n_ > 0.0);
    double centroid_norm2 = 0.0;
    for (double v : ls_) centroid_norm2 += (v / n_) * (v / n_);
    const double r2 = ss_ / n_ - centroid_norm2;
    return r2 > 0.0 ? r2 : 0.0;
  }

  double Radius() const { return std::sqrt(SquaredRadius()); }

  /// Squared Euclidean distance between the centroids of two CFs — the D0
  /// metric BIRCH uses to pick the closest entry.
  double SquaredCentroidDistance(const ClusterFeature& other) const {
    DEMON_CHECK(n_ > 0.0 && other.n_ > 0.0);
    double sum = 0.0;
    for (size_t i = 0; i < ls_.size(); ++i) {
      const double d = ls_[i] / n_ - other.ls_[i] / other.n_;
      sum += d * d;
    }
    return sum;
  }

  /// Squared distance of a raw point to this CF's centroid.
  double SquaredDistanceToPoint(const double* point, size_t dim) const {
    DEMON_CHECK(n_ > 0.0 && dim == ls_.size());
    double sum = 0.0;
    for (size_t i = 0; i < dim; ++i) {
      const double d = ls_[i] / n_ - point[i];
      sum += d * d;
    }
    return sum;
  }

  /// Squared radius the merge of this CF and `other` would have, without
  /// performing the merge — the absorption test of the CF-tree insert.
  double MergedSquaredRadius(const ClusterFeature& other) const {
    const double n = n_ + other.n_;
    DEMON_CHECK(n > 0.0);
    double centroid_norm2 = 0.0;
    for (size_t i = 0; i < ls_.size(); ++i) {
      const double c = (ls_[i] + other.ls_[i]) / n;
      centroid_norm2 += c * c;
    }
    const double r2 = (ss_ + other.ss_) / n - centroid_norm2;
    return r2 > 0.0 ? r2 : 0.0;
  }

  bool operator==(const ClusterFeature& other) const {
    return n_ == other.n_ && ls_ == other.ls_ && ss_ == other.ss_;
  }

 private:
  double n_ = 0.0;
  std::vector<double> ls_;
  double ss_ = 0.0;
};

}  // namespace demon

#endif  // DEMON_CLUSTERING_CLUSTER_FEATURE_H_
