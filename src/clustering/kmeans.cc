#include "clustering/kmeans.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "common/random.h"

namespace demon {

namespace {

// k-means++ seeding: first centroid weighted-uniform, each next one with
// probability proportional to weight * D(x)^2.
std::vector<Point> SeedPlusPlus(const std::vector<Point>& points,
                                const std::vector<double>& weights, size_t k,
                                Rng* rng) {
  std::vector<Point> centroids;
  centroids.reserve(k);
  AliasSampler first_sampler(weights);
  centroids.push_back(points[first_sampler.Sample(rng)]);

  std::vector<double> d2(points.size(),
                         std::numeric_limits<double>::infinity());
  while (centroids.size() < k) {
    const Point& latest = centroids.back();
    double total = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
      d2[i] = std::min(d2[i], SquaredDistance(points[i], latest));
      total += weights[i] * d2[i];
    }
    if (total <= 0.0) {
      // All mass sits on existing centroids; duplicate one.
      centroids.push_back(centroids[rng->NextUint64(centroids.size())]);
      continue;
    }
    double target = rng->NextDouble() * total;
    size_t chosen = points.size() - 1;
    for (size_t i = 0; i < points.size(); ++i) {
      target -= weights[i] * d2[i];
      if (target <= 0.0) {
        chosen = i;
        break;
      }
    }
    centroids.push_back(points[chosen]);
  }
  return centroids;
}

}  // namespace

KMeansResult WeightedKMeans(const std::vector<Point>& points,
                            const std::vector<double>& weights, size_t k,
                            uint64_t seed, size_t max_iterations) {
  DEMON_CHECK(!points.empty());
  DEMON_CHECK(k >= 1);
  const size_t dim = points[0].size();
  std::vector<double> w = weights;
  if (w.empty()) w.assign(points.size(), 1.0);
  DEMON_CHECK(w.size() == points.size());

  Rng rng(seed);
  KMeansResult result;
  result.centroids = SeedPlusPlus(points, w, k, &rng);
  result.assignments.assign(points.size(), 0);

  for (size_t iter = 0; iter < max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Assignment step.
    bool changed = false;
    result.cost = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
      int best = 0;
      double best_d2 = std::numeric_limits<double>::infinity();
      for (size_t c = 0; c < result.centroids.size(); ++c) {
        const double d2 = SquaredDistance(points[i], result.centroids[c]);
        if (d2 < best_d2) {
          best_d2 = d2;
          best = static_cast<int>(c);
        }
      }
      if (result.assignments[i] != best) {
        result.assignments[i] = best;
        changed = true;
      }
      result.cost += w[i] * best_d2;
    }
    if (!changed && iter > 0) break;

    // Update step (empty clusters keep their centroid).
    std::vector<Point> sums(k, Point(dim, 0.0));
    std::vector<double> mass(k, 0.0);
    for (size_t i = 0; i < points.size(); ++i) {
      const int c = result.assignments[i];
      mass[c] += w[i];
      for (size_t d = 0; d < dim; ++d) sums[c][d] += w[i] * points[i][d];
    }
    for (size_t c = 0; c < k; ++c) {
      if (mass[c] <= 0.0) continue;
      for (size_t d = 0; d < dim; ++d) {
        result.centroids[c][d] = sums[c][d] / mass[c];
      }
    }
  }
  return result;
}

}  // namespace demon
