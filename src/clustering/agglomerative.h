#ifndef DEMON_CLUSTERING_AGGLOMERATIVE_H_
#define DEMON_CLUSTERING_AGGLOMERATIVE_H_

#include <vector>

#include "clustering/cluster_feature.h"

namespace demon {

/// \brief Centroid-linkage agglomerative clustering of weighted
/// sub-clusters: repeatedly merges the pair of clusters with the closest
/// centroids until `k` remain. The other "traditional" phase-2 algorithm
/// ([JD88], [DH73]) BIRCH can apply to its in-memory sub-clusters.
///
/// Input sub-clusters are given as CFs; merging is exact CF addition, so
/// the resulting clusters carry exact counts, centroids and radii of their
/// member points. Returns the assignment of each input CF to an output
/// cluster, parallel to `entries`.
std::vector<int> AgglomerativeMerge(const std::vector<ClusterFeature>& entries,
                                    size_t k,
                                    std::vector<ClusterFeature>* clusters);

}  // namespace demon

#endif  // DEMON_CLUSTERING_AGGLOMERATIVE_H_
