#ifndef DEMON_CLUSTERING_BIRCH_H_
#define DEMON_CLUSTERING_BIRCH_H_

#include <memory>
#include <vector>

#include "clustering/cf_tree.h"
#include "clustering/cluster_model.h"

namespace demon {

/// Which "traditional clustering algorithm" phase 2 applies to the
/// in-memory sub-clusters (paper §3.1.2 leaves the choice open).
enum class Phase2Algorithm {
  kWeightedKMeans,
  kAgglomerative,
};

/// Configuration shared by BIRCH and BIRCH+.
struct BirchOptions {
  CFTreeOptions tree;
  /// Required number of clusters K.
  size_t num_clusters = 50;
  Phase2Algorithm phase2 = Phase2Algorithm::kAgglomerative;
  /// Seed for k-means phase 2 (ignored by agglomerative).
  uint64_t seed = 42;
  size_t kmeans_max_iterations = 50;
};

/// Timing breakdown of a clustering run (the quantities of Figure 8).
struct BirchStats {
  double phase1_seconds = 0.0;
  double phase2_seconds = 0.0;
  size_t num_subclusters = 0;
  size_t points_scanned = 0;
};

/// \brief Runs phase 2 (global clustering of sub-clusters) and returns the
/// cluster model. Exposed separately because BIRCH+ re-runs it per block.
ClusterModel GlobalCluster(const std::vector<ClusterFeature>& subclusters,
                           const BirchOptions& options);

/// \brief Non-incremental BIRCH [ZRL96]: scans all blocks to build a fresh
/// CF-tree (phase 1), then clusters the sub-clusters (phase 2). This is
/// the baseline DEMON's Figure 8 compares BIRCH+ against — it re-clusters
/// the entire database whenever a new block arrives.
ClusterModel RunBirch(
    const std::vector<std::shared_ptr<const PointBlock>>& blocks, size_t dim,
    const BirchOptions& options, BirchStats* stats = nullptr);

/// \brief BIRCH+ (paper §3.1.2): keeps the phase-1 sub-cluster set
/// (CF-tree) alive across blocks. Adding a block resumes phase 1 — only
/// the new block is scanned — and the cluster model is refreshed by
/// re-running the cheap phase 2 on the updated sub-clusters. At any time
/// the model equals what non-incremental BIRCH would produce on the
/// concatenation of all blocks added so far.
class BirchPlus {
 public:
  BirchPlus(size_t dim, const BirchOptions& options);

  /// Scans `block`, updating the sub-cluster set C_t -> C_{t+1}, then
  /// rebuilds the cluster model via phase 2.
  void AddBlock(const PointBlock& block);

  /// The current cluster model (phase-2 output after the last AddBlock).
  const ClusterModel& model() const { return model_; }

  /// The current sub-cluster set C_t.
  std::vector<ClusterFeature> Subclusters() const {
    return tree_.LeafEntries();
  }

  const CFTree& tree() const { return tree_; }
  /// Stats of the last AddBlock (phase 1 = incremental scan of the new
  /// block, phase 2 = global clustering; Figure 8 plots both).
  const BirchStats& last_stats() const { return last_stats_; }

  /// Serializes the CF-tree and the current cluster model (checkpointing;
  /// stats are instrumentation and not persisted).
  void SaveState(persistence::Writer& w) const;

  /// Restores state saved by SaveState into a freshly constructed BIRCH+
  /// of the same dim/options.
  [[nodiscard]] Status LoadState(persistence::Reader& r);

  /// Binds `registry` for phase spans, the
  /// `birch/{phase1,phase2}_seconds` histograms, and — forwarded to the
  /// CF-tree — insert/rebuild instrumentation. BirchStats stays available
  /// in every build.
  void set_telemetry(telemetry::TelemetryRegistry* registry) {
    tree_.set_telemetry(registry);
    if constexpr (telemetry::kEnabled) {
      telemetry_ = registry;
      phase1_hist_ = registry == nullptr
                         ? nullptr
                         : registry->histogram("birch/phase1_seconds");
      phase2_hist_ = registry == nullptr
                         ? nullptr
                         : registry->histogram("birch/phase2_seconds");
    }
  }

 private:
  BirchOptions options_;
  CFTree tree_;
  ClusterModel model_;
  BirchStats last_stats_;
  /// All null in DEMON_TELEMETRY=OFF builds (see set_telemetry).
  telemetry::TelemetryRegistry* telemetry_ = nullptr;
  telemetry::Histogram* phase1_hist_ = nullptr;
  telemetry::Histogram* phase2_hist_ = nullptr;
};

}  // namespace demon

#endif  // DEMON_CLUSTERING_BIRCH_H_
