#include "clustering/agglomerative.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/check.h"

namespace demon {

namespace {

// Active-cluster bookkeeping with cached nearest neighbours: merges are
// O(m) each amortized except when a merge invalidates cached neighbours,
// which triggers an O(m) rescan for the affected clusters.
struct Active {
  ClusterFeature cf;
  bool alive = true;
  size_t nn = 0;
  double nn_d2 = std::numeric_limits<double>::infinity();
};

void RecomputeNeighbor(std::vector<Active>* actives, size_t i) {
  auto& a = (*actives)[i];
  a.nn_d2 = std::numeric_limits<double>::infinity();
  for (size_t j = 0; j < actives->size(); ++j) {
    if (j == i || !(*actives)[j].alive) continue;
    const double d2 = a.cf.SquaredCentroidDistance((*actives)[j].cf);
    if (d2 < a.nn_d2) {
      a.nn_d2 = d2;
      a.nn = j;
    }
  }
}

}  // namespace

std::vector<int> AgglomerativeMerge(const std::vector<ClusterFeature>& entries,
                                    size_t k,
                                    std::vector<ClusterFeature>* clusters) {
  DEMON_CHECK(!entries.empty());
  DEMON_CHECK(k >= 1);
  const size_t m = entries.size();

  std::vector<Active> actives(m);
  // parent[i] tracks which active cluster each original entry belongs to.
  std::vector<size_t> parent(m);
  std::iota(parent.begin(), parent.end(), 0);
  for (size_t i = 0; i < m; ++i) actives[i].cf = entries[i];
  size_t alive = m;
  if (alive > 1) {
    for (size_t i = 0; i < m; ++i) RecomputeNeighbor(&actives, i);
  }

  while (alive > k) {
    // Find the globally closest pair via the cached neighbours.
    size_t best = 0;
    double best_d2 = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < m; ++i) {
      if (actives[i].alive && actives[i].nn_d2 < best_d2 &&
          actives[actives[i].nn].alive) {
        best_d2 = actives[i].nn_d2;
        best = i;
      }
    }
    size_t a = best;
    size_t b = actives[best].nn;
    DEMON_CHECK(actives[a].alive && actives[b].alive && a != b);
    if (b < a) std::swap(a, b);

    actives[a].cf.Merge(actives[b].cf);
    actives[b].alive = false;
    --alive;
    for (size_t i = 0; i < m; ++i) {
      if (parent[i] == b) parent[i] = a;
    }
    if (alive == 1) break;
    // Refresh caches: the merged cluster; anyone pointing at a or b; and
    // anyone the moved centroid of a got closer to than its cached nn.
    RecomputeNeighbor(&actives, a);
    for (size_t i = 0; i < m; ++i) {
      if (!actives[i].alive || i == a) continue;
      if (actives[i].nn == a || actives[i].nn == b) {
        RecomputeNeighbor(&actives, i);
      } else {
        const double d2 =
            actives[i].cf.SquaredCentroidDistance(actives[a].cf);
        if (d2 < actives[i].nn_d2) {
          actives[i].nn_d2 = d2;
          actives[i].nn = a;
        }
      }
    }
  }

  // Compact alive clusters and translate assignments.
  clusters->clear();
  std::vector<int> remap(m, -1);
  for (size_t i = 0; i < m; ++i) {
    if (actives[i].alive) {
      remap[i] = static_cast<int>(clusters->size());
      clusters->push_back(std::move(actives[i].cf));
    }
  }
  std::vector<int> assignments(m);
  for (size_t i = 0; i < m; ++i) assignments[i] = remap[parent[i]];
  return assignments;
}

}  // namespace demon
