#include "clustering/cf_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace demon {

CFTree::CFTree(size_t dim, const CFTreeOptions& options)
    : dim_(dim),
      options_(options),
      threshold_(options.initial_threshold),
      root_(std::make_unique<Node>()),
      root_cf_(dim) {
  DEMON_CHECK(dim_ > 0);
  DEMON_CHECK(options_.branching >= 2);
  DEMON_CHECK(options_.leaf_capacity >= 2);
  DEMON_CHECK(options_.max_leaf_entries >= options_.leaf_capacity);
}

void CFTree::Insert(const double* point) {
  const ClusterFeature cf = ClusterFeature::FromPoint(point, dim_);
  root_cf_.Merge(cf);
  InsertResult result = InsertCF(root_.get(), cf);
  if (result.split) {
    // Grow a new root one level up.
    auto new_root = std::make_unique<Node>();
    new_root->is_leaf = false;
    ClusterFeature old_root_cf(dim_);
    for (const ClusterFeature& entry : root_->entries) {
      old_root_cf.Merge(entry);
    }
    new_root->entries.push_back(std::move(old_root_cf));
    new_root->children.push_back(std::move(root_));
    new_root->entries.push_back(std::move(result.new_entry));
    new_root->children.push_back(std::move(result.new_child));
    root_ = std::move(new_root);
  }
  if (num_leaf_entries_ > options_.max_leaf_entries) {
    RebuildWithLargerThreshold();
  }
}

void CFTree::InsertBlock(const PointBlock& block) {
  DEMON_CHECK(block.dim() == dim_);
  DEMON_TRACE_SPAN(span, telemetry_,
                   "cftree-insert " + std::to_string(block.size()) + " pts",
                   "cftree");
  for (size_t i = 0; i < block.size(); ++i) Insert(block.PointAt(i));
  DEMON_COUNTER_ADD(points_inserted_, block.size());
}

size_t CFTree::ClosestEntry(const Node& node,
                            const ClusterFeature& cf) const {
  DEMON_CHECK(!node.entries.empty());
  size_t best = 0;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < node.entries.size(); ++i) {
    const double d2 = node.entries[i].SquaredCentroidDistance(cf);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = i;
    }
  }
  return best;
}

CFTree::InsertResult CFTree::InsertCF(Node* node, const ClusterFeature& cf) {
  if (node->is_leaf) {
    if (!node->entries.empty()) {
      const size_t closest = ClosestEntry(*node, cf);
      ClusterFeature& entry = node->entries[closest];
      // Absorption test: the merged sub-cluster must stay within T.
      if (std::sqrt(entry.MergedSquaredRadius(cf)) <= threshold_) {
        entry.Merge(cf);
        return {};
      }
    }
    node->entries.push_back(cf);
    ++num_leaf_entries_;
    if (node->entries.size() > options_.leaf_capacity) return Split(node);
    return {};
  }

  const size_t closest = ClosestEntry(*node, cf);
  InsertResult child_result = InsertCF(node->children[closest].get(), cf);
  // Refresh the summary of the descended child.
  ClusterFeature refreshed(dim_);
  for (const ClusterFeature& entry : node->children[closest]->entries) {
    refreshed.Merge(entry);
  }
  node->entries[closest] = std::move(refreshed);
  if (child_result.split) {
    node->entries.push_back(std::move(child_result.new_entry));
    node->children.push_back(std::move(child_result.new_child));
    if (node->entries.size() > options_.branching) return Split(node);
  }
  return {};
}

CFTree::InsertResult CFTree::Split(Node* node) {
  // Seed the two halves with the farthest pair of entries (BIRCH's split).
  const size_t n = node->entries.size();
  DEMON_CHECK(n >= 2);
  size_t seed_a = 0;
  size_t seed_b = 1;
  double max_d2 = -1.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double d2 =
          node->entries[i].SquaredCentroidDistance(node->entries[j]);
      if (d2 > max_d2) {
        max_d2 = d2;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  auto sibling = std::make_unique<Node>();
  sibling->is_leaf = node->is_leaf;
  std::vector<ClusterFeature> keep_entries;
  std::vector<NodePtr> keep_children;
  // Copy the seeds: entries are moved out below while later iterations
  // still measure distances against the seeds.
  const ClusterFeature cf_a = node->entries[seed_a];
  const ClusterFeature cf_b = node->entries[seed_b];
  for (size_t i = 0; i < n; ++i) {
    const double da = node->entries[i].SquaredCentroidDistance(cf_a);
    const double db = node->entries[i].SquaredCentroidDistance(cf_b);
    // Ties (and the seeds themselves) go by proximity, seed_a winning.
    const bool to_sibling = db < da;
    if (to_sibling) {
      sibling->entries.push_back(std::move(node->entries[i]));
      if (!node->is_leaf) {
        sibling->children.push_back(std::move(node->children[i]));
      }
    } else {
      keep_entries.push_back(std::move(node->entries[i]));
      if (!node->is_leaf) {
        keep_children.push_back(std::move(node->children[i]));
      }
    }
  }
  DEMON_CHECK(!keep_entries.empty());
  DEMON_CHECK(!sibling->entries.empty());
  node->entries = std::move(keep_entries);
  node->children = std::move(keep_children);

  InsertResult result;
  result.split = true;
  ClusterFeature sibling_cf(dim_);
  for (const ClusterFeature& entry : sibling->entries) {
    sibling_cf.Merge(entry);
  }
  result.new_entry = std::move(sibling_cf);
  result.new_child = std::move(sibling);
  return result;
}

void CFTree::CollectLeafEntries(const Node& node,
                                std::vector<ClusterFeature>* out) const {
  if (node.is_leaf) {
    out->insert(out->end(), node.entries.begin(), node.entries.end());
    return;
  }
  for (const NodePtr& child : node.children) {
    CollectLeafEntries(*child, out);
  }
}

std::vector<ClusterFeature> CFTree::LeafEntries() const {
  std::vector<ClusterFeature> out;
  out.reserve(num_leaf_entries_);
  CollectLeafEntries(*root_, &out);
  return out;
}

double CFTree::MinLeafEntryDistance(const Node& node) const {
  double min_d = std::numeric_limits<double>::infinity();
  if (node.is_leaf) {
    for (size_t i = 0; i < node.entries.size(); ++i) {
      for (size_t j = i + 1; j < node.entries.size(); ++j) {
        min_d = std::min(
            min_d, node.entries[i].SquaredCentroidDistance(node.entries[j]));
      }
    }
    return min_d;
  }
  for (const NodePtr& child : node.children) {
    min_d = std::min(min_d, MinLeafEntryDistance(*child));
  }
  return min_d;
}

namespace {

constexpr char kModule[] = "cf-tree";

/// Relative-plus-absolute tolerance for comparing recomputed CF sums:
/// summaries are re-derived along different merge orders, so exact
/// floating-point equality is too strict, but any structural corruption
/// moves values far beyond rounding noise.
bool ApproxEqual(double a, double b) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= 1e-6 * scale;
}

std::string DumpCF(const ClusterFeature& cf) {
  audit::Msg msg;
  msg << "CF{n=" << cf.n() << ", ss=" << cf.ss() << ", ls=[";
  const size_t shown = cf.ls().size() < 8 ? cf.ls().size() : 8;
  for (size_t i = 0; i < shown; ++i) {
    if (i > 0) msg << ", ";
    msg << cf.ls()[i];
  }
  if (shown < cf.ls().size()) msg << ", ...";
  msg << "]}";
  return msg;
}

void AuditEntryCF(const ClusterFeature& cf, size_t dim, const char* where,
                  audit::AuditResult* audit) {
  AUDIT_CHECK(audit, kModule, "cf-tree/entry-dim", cf.dim() == dim,
              audit::Msg() << where << " entry has dimension " << cf.dim()
                           << ", tree is " << dim << "-dimensional",
              DumpCF(cf));
  AUDIT_CHECK(audit, kModule, "cf-tree/entry-weight", cf.n() >= 1.0,
              audit::Msg() << where
                           << " entry summarizes fewer than one point (n="
                           << cf.n() << ")",
              DumpCF(cf));
  if (cf.dim() != dim || cf.n() < 1.0) return;
  // Cauchy–Schwarz for CFs: N·SS >= |LS|², i.e. the squared radius is
  // non-negative. A corrupted SS or LS breaks this immediately.
  double ls_norm2 = 0.0;
  for (double v : cf.ls()) ls_norm2 += v * v;
  const double scale = std::max({1.0, cf.n() * cf.ss(), ls_norm2});
  AUDIT_CHECK(audit, kModule, "cf-tree/radius-nonnegative",
              cf.n() * cf.ss() >= ls_norm2 - 1e-6 * scale,
              audit::Msg() << where << " entry violates N·SS >= |LS|² ("
                           << cf.n() * cf.ss() << " < " << ls_norm2 << ")",
              DumpCF(cf));
}

}  // namespace

void CFTree::AuditInto(audit::AuditResult* audit) const {
  if (root_ == nullptr) {
    AUDIT_FAIL(audit, kModule, "cf-tree/root-missing", "tree has no root",
               "");
    return;
  }

  size_t leaf_entries = 0;
  ClusterFeature leaf_sum(dim_);
  long leaf_depth = -1;

  // Recursive walk; returns false if the subtree is too broken to
  // summarize (so parents skip their sum checks instead of cascading).
  const std::function<bool(const Node&, size_t)> walk =
      [&](const Node& node, size_t depth) -> bool {
    if (node.is_leaf) {
      AUDIT_CHECK(audit, kModule, "cf-tree/leaf-shape",
                  node.children.empty() &&
                      node.entries.size() <= options_.leaf_capacity,
                  audit::Msg() << "leaf holds " << node.entries.size()
                               << " entries (capacity "
                               << options_.leaf_capacity << ") and "
                               << node.children.size() << " children",
                  "");
      if (leaf_depth < 0) {
        leaf_depth = static_cast<long>(depth);
      } else {
        AUDIT_CHECK(audit, kModule, "cf-tree/balanced",
                    leaf_depth == static_cast<long>(depth),
                    audit::Msg() << "leaves at depths " << leaf_depth
                                 << " and " << depth
                                 << " — the tree must be height-balanced",
                    "");
      }
      for (const ClusterFeature& entry : node.entries) {
        AuditEntryCF(entry, dim_, "leaf", audit);
        ++leaf_entries;
        if (entry.dim() == dim_) leaf_sum.Merge(entry);
      }
      return true;
    }

    if (node.entries.size() != node.children.size() ||
        node.entries.size() > options_.branching || node.entries.empty()) {
      AUDIT_FAIL(audit, kModule, "cf-tree/internal-shape",
                 audit::Msg() << "internal node holds " << node.entries.size()
                              << " entries and " << node.children.size()
                              << " children (branching factor "
                              << options_.branching << ")",
                 "");
      return false;
    }
    bool summarizable = true;
    for (size_t i = 0; i < node.entries.size(); ++i) {
      AuditEntryCF(node.entries[i], dim_, "internal", audit);
      if (node.children[i] == nullptr) {
        AUDIT_FAIL(audit, kModule, "cf-tree/internal-shape",
                   audit::Msg() << "internal node child " << i << " is null",
                   "");
        summarizable = false;
        continue;
      }
      if (!walk(*node.children[i], depth + 1)) {
        summarizable = false;
        continue;
      }
      // CF additivity: an internal entry must equal the merge of its
      // child's entries.
      ClusterFeature child_sum(dim_);
      for (const ClusterFeature& entry : node.children[i]->entries) {
        if (entry.dim() == dim_) child_sum.Merge(entry);
      }
      bool ls_equal = child_sum.ls().size() == node.entries[i].ls().size();
      for (size_t d = 0; ls_equal && d < child_sum.ls().size(); ++d) {
        ls_equal = ApproxEqual(child_sum.ls()[d], node.entries[i].ls()[d]);
      }
      AUDIT_CHECK(audit, kModule, "cf-tree/child-sum",
                  ls_equal && ApproxEqual(child_sum.n(), node.entries[i].n()) &&
                      ApproxEqual(child_sum.ss(), node.entries[i].ss()),
                  audit::Msg() << "internal entry " << i
                               << " is not the merge of its child's entries",
                  audit::Msg() << "entry " << DumpCF(node.entries[i])
                               << " vs child sum " << DumpCF(child_sum));
    }
    return summarizable;
  };

  const bool summarizable = walk(*root_, 0);

  AUDIT_CHECK(audit, kModule, "cf-tree/leaf-count",
              leaf_entries == num_leaf_entries_,
              audit::Msg() << "num_leaf_entries bookkeeping says "
                           << num_leaf_entries_ << ", tree holds "
                           << leaf_entries,
              "");
  AUDIT_CHECK(audit, kModule, "cf-tree/size-limit",
              num_leaf_entries_ <= options_.max_leaf_entries,
              audit::Msg() << num_leaf_entries_
                           << " leaf entries exceed max_leaf_entries "
                           << options_.max_leaf_entries
                           << " — a rebuild was missed",
              "");
  if (summarizable) {
    bool ls_equal = leaf_sum.ls().size() == root_cf_.ls().size();
    for (size_t d = 0; ls_equal && d < leaf_sum.ls().size(); ++d) {
      ls_equal = ApproxEqual(leaf_sum.ls()[d], root_cf_.ls()[d]);
    }
    AUDIT_CHECK(audit, kModule, "cf-tree/root-cf",
                ls_equal && ApproxEqual(leaf_sum.n(), root_cf_.n()) &&
                    ApproxEqual(leaf_sum.ss(), root_cf_.ss()),
                "the running total CF is not the merge of all leaf entries",
                audit::Msg() << "total " << DumpCF(root_cf_)
                             << " vs leaf sum " << DumpCF(leaf_sum));
  }
}

void CFTree::MutateLeafEntryForTest(
    size_t index, const std::function<void(ClusterFeature*)>& fn) {
  size_t seen = 0;
  const std::function<bool(Node&)> walk = [&](Node& node) -> bool {
    if (node.is_leaf) {
      if (index < seen + node.entries.size()) {
        fn(&node.entries[index - seen]);
        return true;
      }
      seen += node.entries.size();
      return false;
    }
    for (const NodePtr& child : node.children) {
      if (walk(*child)) return true;
    }
    return false;
  };
  DEMON_CHECK_MSG(walk(*root_), "leaf entry index out of range");
}

void CFTree::RebuildWithLargerThreshold() {
  DEMON_TRACE_SPAN(span, telemetry_, "cftree-rebuild", "cftree");
  telemetry::ScopedTimer timer(rebuild_hist_);
  while (num_leaf_entries_ > options_.max_leaf_entries) {
    ++num_rebuilds_;
    DEMON_COUNTER_ADD(rebuilds_, 1);
    // Data-driven threshold bump: at least the closest pair of sibling
    // sub-clusters must become mergeable, and grow geometrically so the
    // loop terminates fast.
    const double min_d2 = MinLeafEntryDistance(*root_);
    double next = std::isfinite(min_d2) ? std::sqrt(min_d2) : threshold_;
    next = std::max(next, threshold_ * 1.5);
    if (next <= threshold_) next = threshold_ > 0.0 ? threshold_ * 2.0 : 1.0;
    threshold_ = next;

    std::vector<ClusterFeature> entries = LeafEntries();
    root_ = std::make_unique<Node>();
    num_leaf_entries_ = 0;
    for (const ClusterFeature& cf : entries) {
      InsertResult result = InsertCF(root_.get(), cf);
      if (result.split) {
        auto new_root = std::make_unique<Node>();
        new_root->is_leaf = false;
        ClusterFeature old_root_cf(dim_);
        for (const ClusterFeature& entry : root_->entries) {
          old_root_cf.Merge(entry);
        }
        new_root->entries.push_back(std::move(old_root_cf));
        new_root->children.push_back(std::move(root_));
        new_root->entries.push_back(std::move(result.new_entry));
        new_root->children.push_back(std::move(result.new_child));
        root_ = std::move(new_root);
      }
    }
  }
}

namespace {

void SaveCF(persistence::Writer& w, const ClusterFeature& cf) {
  w.WriteDouble(cf.n());
  w.WriteDoubleVector(cf.ls());
  w.WriteDouble(cf.ss());
}

ClusterFeature LoadCF(persistence::Reader& r, size_t dim) {
  const double n = r.ReadDouble();
  std::vector<double> ls = r.ReadDoubleVector();
  const double ss = r.ReadDouble();
  if (!r.ok()) return ClusterFeature();
  if (ls.size() != dim) {
    r.Fail("cluster feature has dimension " + std::to_string(ls.size()));
    return ClusterFeature();
  }
  return ClusterFeature::FromRaw(n, std::move(ls), ss);
}

/// Height cap when decoding: CF-trees are height-balanced and far
/// shallower in practice; a corrupt stream must not recurse the stack dry.
constexpr size_t kMaxLoadDepth = 64;

}  // namespace

void CFTree::SaveNode(persistence::Writer& w, const Node& node) const {
  w.WriteBool(node.is_leaf);
  w.WriteU64(node.entries.size());
  for (const ClusterFeature& entry : node.entries) SaveCF(w, entry);
  if (!node.is_leaf) {
    for (const NodePtr& child : node.children) SaveNode(w, *child);
  }
}

CFTree::NodePtr CFTree::LoadNode(persistence::Reader& r, size_t depth) {
  if (depth > kMaxLoadDepth) {
    r.Fail("CF-tree deeper than the decode height cap");
    return nullptr;
  }
  auto node = std::make_unique<Node>();
  node->is_leaf = r.ReadBool();
  // Each serialized entry is at least n + length + ss (24 bytes).
  const size_t num_entries = r.ReadLength(24);
  if (!r.ok()) return nullptr;
  node->entries.reserve(num_entries);
  for (size_t i = 0; i < num_entries; ++i) {
    node->entries.push_back(LoadCF(r, dim_));
    if (!r.ok()) return nullptr;
  }
  if (!node->is_leaf) {
    node->children.reserve(num_entries);
    for (size_t i = 0; i < num_entries; ++i) {
      NodePtr child = LoadNode(r, depth + 1);
      if (!r.ok()) return nullptr;
      node->children.push_back(std::move(child));
    }
  }
  return node;
}

void CFTree::SaveState(persistence::Writer& w) const {
  w.WriteDouble(threshold_);
  w.WriteU64(num_rebuilds_);
  w.WriteU64(num_leaf_entries_);
  SaveCF(w, root_cf_);
  SaveNode(w, *root_);
}

void CFTree::LoadState(persistence::Reader& r) {
  threshold_ = r.ReadDouble();
  num_rebuilds_ = r.ReadU64();
  num_leaf_entries_ = r.ReadU64();
  root_cf_ = LoadCF(r, dim_);
  NodePtr root = LoadNode(r, 1);
  if (!r.ok()) return;
  root_ = std::move(root);
}

}  // namespace demon
