#include "clustering/cf_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace demon {

CFTree::CFTree(size_t dim, const CFTreeOptions& options)
    : dim_(dim),
      options_(options),
      threshold_(options.initial_threshold),
      root_(std::make_unique<Node>()),
      root_cf_(dim) {
  DEMON_CHECK(dim_ > 0);
  DEMON_CHECK(options_.branching >= 2);
  DEMON_CHECK(options_.leaf_capacity >= 2);
  DEMON_CHECK(options_.max_leaf_entries >= options_.leaf_capacity);
}

void CFTree::Insert(const double* point) {
  const ClusterFeature cf = ClusterFeature::FromPoint(point, dim_);
  root_cf_.Merge(cf);
  InsertResult result = InsertCF(root_.get(), cf);
  if (result.split) {
    // Grow a new root one level up.
    auto new_root = std::make_unique<Node>();
    new_root->is_leaf = false;
    ClusterFeature old_root_cf(dim_);
    for (const ClusterFeature& entry : root_->entries) {
      old_root_cf.Merge(entry);
    }
    new_root->entries.push_back(std::move(old_root_cf));
    new_root->children.push_back(std::move(root_));
    new_root->entries.push_back(std::move(result.new_entry));
    new_root->children.push_back(std::move(result.new_child));
    root_ = std::move(new_root);
  }
  if (num_leaf_entries_ > options_.max_leaf_entries) {
    RebuildWithLargerThreshold();
  }
}

void CFTree::InsertBlock(const PointBlock& block) {
  DEMON_CHECK(block.dim() == dim_);
  for (size_t i = 0; i < block.size(); ++i) Insert(block.PointAt(i));
}

size_t CFTree::ClosestEntry(const Node& node,
                            const ClusterFeature& cf) const {
  DEMON_CHECK(!node.entries.empty());
  size_t best = 0;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < node.entries.size(); ++i) {
    const double d2 = node.entries[i].SquaredCentroidDistance(cf);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = i;
    }
  }
  return best;
}

CFTree::InsertResult CFTree::InsertCF(Node* node, const ClusterFeature& cf) {
  if (node->is_leaf) {
    if (!node->entries.empty()) {
      const size_t closest = ClosestEntry(*node, cf);
      ClusterFeature& entry = node->entries[closest];
      // Absorption test: the merged sub-cluster must stay within T.
      if (std::sqrt(entry.MergedSquaredRadius(cf)) <= threshold_) {
        entry.Merge(cf);
        return {};
      }
    }
    node->entries.push_back(cf);
    ++num_leaf_entries_;
    if (node->entries.size() > options_.leaf_capacity) return Split(node);
    return {};
  }

  const size_t closest = ClosestEntry(*node, cf);
  InsertResult child_result = InsertCF(node->children[closest].get(), cf);
  // Refresh the summary of the descended child.
  ClusterFeature refreshed(dim_);
  for (const ClusterFeature& entry : node->children[closest]->entries) {
    refreshed.Merge(entry);
  }
  node->entries[closest] = std::move(refreshed);
  if (child_result.split) {
    node->entries.push_back(std::move(child_result.new_entry));
    node->children.push_back(std::move(child_result.new_child));
    if (node->entries.size() > options_.branching) return Split(node);
  }
  return {};
}

CFTree::InsertResult CFTree::Split(Node* node) {
  // Seed the two halves with the farthest pair of entries (BIRCH's split).
  const size_t n = node->entries.size();
  DEMON_CHECK(n >= 2);
  size_t seed_a = 0;
  size_t seed_b = 1;
  double max_d2 = -1.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double d2 =
          node->entries[i].SquaredCentroidDistance(node->entries[j]);
      if (d2 > max_d2) {
        max_d2 = d2;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  auto sibling = std::make_unique<Node>();
  sibling->is_leaf = node->is_leaf;
  std::vector<ClusterFeature> keep_entries;
  std::vector<NodePtr> keep_children;
  // Copy the seeds: entries are moved out below while later iterations
  // still measure distances against the seeds.
  const ClusterFeature cf_a = node->entries[seed_a];
  const ClusterFeature cf_b = node->entries[seed_b];
  for (size_t i = 0; i < n; ++i) {
    const double da = node->entries[i].SquaredCentroidDistance(cf_a);
    const double db = node->entries[i].SquaredCentroidDistance(cf_b);
    // Ties (and the seeds themselves) go by proximity, seed_a winning.
    const bool to_sibling = db < da;
    if (to_sibling) {
      sibling->entries.push_back(std::move(node->entries[i]));
      if (!node->is_leaf) {
        sibling->children.push_back(std::move(node->children[i]));
      }
    } else {
      keep_entries.push_back(std::move(node->entries[i]));
      if (!node->is_leaf) {
        keep_children.push_back(std::move(node->children[i]));
      }
    }
  }
  DEMON_CHECK(!keep_entries.empty());
  DEMON_CHECK(!sibling->entries.empty());
  node->entries = std::move(keep_entries);
  node->children = std::move(keep_children);

  InsertResult result;
  result.split = true;
  ClusterFeature sibling_cf(dim_);
  for (const ClusterFeature& entry : sibling->entries) {
    sibling_cf.Merge(entry);
  }
  result.new_entry = std::move(sibling_cf);
  result.new_child = std::move(sibling);
  return result;
}

void CFTree::CollectLeafEntries(const Node& node,
                                std::vector<ClusterFeature>* out) const {
  if (node.is_leaf) {
    out->insert(out->end(), node.entries.begin(), node.entries.end());
    return;
  }
  for (const NodePtr& child : node.children) {
    CollectLeafEntries(*child, out);
  }
}

std::vector<ClusterFeature> CFTree::LeafEntries() const {
  std::vector<ClusterFeature> out;
  out.reserve(num_leaf_entries_);
  CollectLeafEntries(*root_, &out);
  return out;
}

double CFTree::MinLeafEntryDistance(const Node& node) const {
  double min_d = std::numeric_limits<double>::infinity();
  if (node.is_leaf) {
    for (size_t i = 0; i < node.entries.size(); ++i) {
      for (size_t j = i + 1; j < node.entries.size(); ++j) {
        min_d = std::min(
            min_d, node.entries[i].SquaredCentroidDistance(node.entries[j]));
      }
    }
    return min_d;
  }
  for (const NodePtr& child : node.children) {
    min_d = std::min(min_d, MinLeafEntryDistance(*child));
  }
  return min_d;
}

void CFTree::RebuildWithLargerThreshold() {
  while (num_leaf_entries_ > options_.max_leaf_entries) {
    ++num_rebuilds_;
    // Data-driven threshold bump: at least the closest pair of sibling
    // sub-clusters must become mergeable, and grow geometrically so the
    // loop terminates fast.
    const double min_d2 = MinLeafEntryDistance(*root_);
    double next = std::isfinite(min_d2) ? std::sqrt(min_d2) : threshold_;
    next = std::max(next, threshold_ * 1.5);
    if (next <= threshold_) next = threshold_ > 0.0 ? threshold_ * 2.0 : 1.0;
    threshold_ = next;

    std::vector<ClusterFeature> entries = LeafEntries();
    root_ = std::make_unique<Node>();
    num_leaf_entries_ = 0;
    for (const ClusterFeature& cf : entries) {
      InsertResult result = InsertCF(root_.get(), cf);
      if (result.split) {
        auto new_root = std::make_unique<Node>();
        new_root->is_leaf = false;
        ClusterFeature old_root_cf(dim_);
        for (const ClusterFeature& entry : root_->entries) {
          old_root_cf.Merge(entry);
        }
        new_root->entries.push_back(std::move(old_root_cf));
        new_root->children.push_back(std::move(root_));
        new_root->entries.push_back(std::move(result.new_entry));
        new_root->children.push_back(std::move(result.new_child));
        root_ = std::move(new_root);
      }
    }
  }
}

}  // namespace demon
