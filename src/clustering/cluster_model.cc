#include "clustering/cluster_model.h"

#include <limits>

#include "common/check.h"

namespace demon {

int ClusterModel::Assign(const double* point, size_t dim) const {
  DEMON_CHECK(!clusters_.empty());
  int best = 0;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < clusters_.size(); ++c) {
    const double d2 = clusters_[c].SquaredDistanceToPoint(point, dim);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = static_cast<int>(c);
    }
  }
  return best;
}

std::vector<int> LabelBlock(const PointBlock& block,
                            const ClusterModel& model) {
  std::vector<int> labels(block.size());
  for (size_t i = 0; i < block.size(); ++i) {
    labels[i] = model.Assign(block.PointAt(i), block.dim());
  }
  return labels;
}

}  // namespace demon
