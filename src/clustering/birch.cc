#include "clustering/birch.h"

#include "clustering/agglomerative.h"
#include "clustering/kmeans.h"
#include "common/check.h"
#include "common/telemetry.h"

namespace demon {

ClusterModel GlobalCluster(const std::vector<ClusterFeature>& subclusters,
                           const BirchOptions& options) {
  DEMON_CHECK(!subclusters.empty());
  const size_t k = std::min(options.num_clusters, subclusters.size());

  if (options.phase2 == Phase2Algorithm::kAgglomerative) {
    std::vector<ClusterFeature> clusters;
    AgglomerativeMerge(subclusters, k, &clusters);
    return ClusterModel(std::move(clusters));
  }

  // Weighted k-means over sub-cluster centroids; clusters are then exact
  // CF merges of their member sub-clusters.
  std::vector<Point> centroids;
  std::vector<double> weights;
  centroids.reserve(subclusters.size());
  weights.reserve(subclusters.size());
  for (const ClusterFeature& cf : subclusters) {
    centroids.push_back(cf.Centroid());
    weights.push_back(cf.n());
  }
  const KMeansResult result = WeightedKMeans(
      centroids, weights, k, options.seed, options.kmeans_max_iterations);

  const size_t dim = subclusters[0].dim();
  std::vector<ClusterFeature> merged(k, ClusterFeature(dim));
  for (size_t i = 0; i < subclusters.size(); ++i) {
    merged[result.assignments[i]].Merge(subclusters[i]);
  }
  // Drop clusters that received no sub-cluster (possible when k-means
  // leaves a seeded centroid empty).
  std::vector<ClusterFeature> nonempty;
  for (auto& cf : merged) {
    if (!cf.empty()) nonempty.push_back(std::move(cf));
  }
  return ClusterModel(std::move(nonempty));
}

ClusterModel RunBirch(
    const std::vector<std::shared_ptr<const PointBlock>>& blocks, size_t dim,
    const BirchOptions& options, BirchStats* stats) {
  telemetry::ScopedTimer phase1_timer;
  CFTree tree(dim, options.tree);
  size_t scanned = 0;
  for (const auto& block : blocks) {
    tree.InsertBlock(*block);
    scanned += block->size();
  }
  const std::vector<ClusterFeature> subclusters = tree.LeafEntries();
  if (stats != nullptr) {
    stats->phase1_seconds = phase1_timer.Stop();
    stats->num_subclusters = subclusters.size();
    stats->points_scanned = scanned;
  }

  telemetry::ScopedTimer phase2_timer;
  ClusterModel model = subclusters.empty()
                           ? ClusterModel()
                           : GlobalCluster(subclusters, options);
  if (stats != nullptr) stats->phase2_seconds = phase2_timer.Stop();
  return model;
}

BirchPlus::BirchPlus(size_t dim, const BirchOptions& options)
    : options_(options), tree_(dim, options.tree) {}

void BirchPlus::AddBlock(const PointBlock& block) {
  last_stats_ = BirchStats{};
  {
    DEMON_TRACE_SPAN(span, telemetry_, "birch-phase1", "clustering");
    telemetry::ScopedTimer timer(phase1_hist_);
    // Resume phase 1: only the new block is scanned (paper §3.1.2).
    tree_.InsertBlock(block);
    last_stats_.phase1_seconds = timer.Stop();
    last_stats_.points_scanned = block.size();
  }

  DEMON_TRACE_SPAN(span, telemetry_, "birch-phase2", "clustering");
  telemetry::ScopedTimer timer(phase2_hist_);
  const std::vector<ClusterFeature> subclusters = tree_.LeafEntries();
  last_stats_.num_subclusters = subclusters.size();
  if (!subclusters.empty()) {
    model_ = GlobalCluster(subclusters, options_);
  }
  last_stats_.phase2_seconds = timer.Stop();
}

void BirchPlus::SaveState(persistence::Writer& w) const {
  tree_.SaveState(w);
  // The model is a deterministic function of the sub-clusters, but
  // serializing it avoids re-running phase 2 on restore.
  w.WriteU64(model_.clusters().size());
  for (const ClusterFeature& cf : model_.clusters()) {
    w.WriteDouble(cf.n());
    w.WriteDoubleVector(cf.ls());
    w.WriteDouble(cf.ss());
  }
}

Status BirchPlus::LoadState(persistence::Reader& r) {
  tree_.LoadState(r);
  const size_t num_clusters = r.ReadLength(24);
  if (!r.ok()) return r.status();
  std::vector<ClusterFeature> clusters;
  clusters.reserve(num_clusters);
  for (size_t i = 0; i < num_clusters; ++i) {
    const double n = r.ReadDouble();
    std::vector<double> ls = r.ReadDoubleVector();
    const double ss = r.ReadDouble();
    if (!r.ok()) return r.status();
    clusters.push_back(ClusterFeature::FromRaw(n, std::move(ls), ss));
  }
  model_ = ClusterModel(std::move(clusters));
  return r.status();
}

}  // namespace demon
