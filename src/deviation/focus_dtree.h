#ifndef DEMON_DEVIATION_FOCUS_DTREE_H_
#define DEMON_DEVIATION_FOCUS_DTREE_H_

#include "deviation/focus.h"
#include "dtree/decision_tree.h"
#include "dtree/dtree_maintainer.h"

namespace demon {

/// \brief FOCUS instantiated with decision-tree models — the third model
/// class of [GGRL99a] ("frequent itemsets, decision tree classifiers, and
/// clusters").
///
/// Structural component: the leaf partition of attribute space. The
/// greatest common refinement of two trees is their overlay — the
/// partition whose cells are intersections of a T1 leaf region with a T2
/// leaf region. Rather than intersecting regions symbolically, each block
/// is scanned once and every record is routed through *both* trees; the
/// pair (leaf-in-T1, leaf-in-T2, class) identifies its GCR cell, and the
/// cell counts are the measures. Deviation and significance then follow
/// the common FOCUS summarization.
class FocusDecisionTrees {
 public:
  struct Options {
    DTreeOptions dtree;
  };

  explicit FocusDecisionTrees(const Options& options) : options_(options) {}

  /// Mines a tree per block and compares them.
  DeviationResult Compare(const LabeledBlock& d1,
                          const LabeledBlock& d2) const;

  /// Compares with already-built models (always scans both blocks once:
  /// the overlay measures are not part of either model).
  DeviationResult CompareWithModels(const LabeledBlock& d1,
                                    const DecisionTree& m1,
                                    const LabeledBlock& d2,
                                    const DecisionTree& m2) const;

  /// Builds the decision-tree model of one block.
  DecisionTree MineModel(const LabeledBlock& block) const;

 private:
  Options options_;
};

}  // namespace demon

#endif  // DEMON_DEVIATION_FOCUS_DTREE_H_
