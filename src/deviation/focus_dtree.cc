#include "deviation/focus_dtree.h"

#include <unordered_map>

#include "common/check.h"

namespace demon {

DecisionTree FocusDecisionTrees::MineModel(const LabeledBlock& block) const {
  DTreeMaintainer maintainer(block.schema(), options_.dtree);
  maintainer.AddBlock(std::shared_ptr<const LabeledBlock>(
      std::shared_ptr<const LabeledBlock>(), &block));
  return std::move(maintainer).TakeModel();
}

DeviationResult FocusDecisionTrees::Compare(const LabeledBlock& d1,
                                            const LabeledBlock& d2) const {
  const DecisionTree m1 = MineModel(d1);
  const DecisionTree m2 = MineModel(d2);
  return CompareWithModels(d1, m1, d2, m2);
}

DeviationResult FocusDecisionTrees::CompareWithModels(
    const LabeledBlock& d1, const DecisionTree& m1, const LabeledBlock& d2,
    const DecisionTree& m2) const {
  DEMON_CHECK(m1.root() != nullptr && m2.root() != nullptr);
  const size_t leaves2 = m2.NumLeaves();
  const size_t classes = d1.schema().num_classes;

  // GCR cell of a record: (leaf in T1, leaf in T2, class). Dense ids via a
  // map since the overlay is usually much smaller than leaves1 x leaves2.
  std::unordered_map<uint64_t, size_t> cell_ids;
  std::vector<double> counts1;
  std::vector<double> counts2;
  const auto tally = [&](const LabeledBlock& block, bool first) {
    for (const LabeledRecord& record : block.records()) {
      const uint64_t key =
          (static_cast<uint64_t>(m1.Route(record)->leaf_id) * leaves2 +
           static_cast<uint64_t>(m2.Route(record)->leaf_id)) *
              classes +
          record.label;
      auto [it, inserted] = cell_ids.emplace(key, cell_ids.size());
      if (inserted) {
        counts1.push_back(0.0);
        counts2.push_back(0.0);
      }
      (first ? counts1 : counts2)[it->second] += 1.0;
    }
  };
  tally(d1, true);
  tally(d2, false);

  return SummarizeRegionCounts(counts1, static_cast<double>(d1.size()),
                               counts2, static_cast<double>(d2.size()),
                               /*scanned=*/true);
}

}  // namespace demon
