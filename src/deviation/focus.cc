#include "deviation/focus.h"

#include <algorithm>

#include "common/check.h"
#include "common/stats.h"
#include "itemsets/apriori.h"
#include "itemsets/prefix_tree.h"

namespace demon {

namespace {

// Counts the supports of `itemsets` in `block` with one scan.
std::vector<uint64_t> CountInBlock(const std::vector<Itemset>& itemsets,
                                   const TransactionBlock& block) {
  PrefixTree tree;
  std::vector<size_t> ids;
  ids.reserve(itemsets.size());
  for (const Itemset& itemset : itemsets) ids.push_back(tree.Insert(itemset));
  for (const Transaction& t : block.transactions()) tree.CountTransaction(t);
  std::vector<uint64_t> counts;
  counts.reserve(itemsets.size());
  for (size_t id : ids) counts.push_back(tree.CountOf(id));
  return counts;
}

}  // namespace

DeviationResult SummarizeRegionCounts(const std::vector<double>& counts1,
                                      double n1,
                                      const std::vector<double>& counts2,
                                      double n2, bool scanned) {
  DeviationResult result;
  result.num_regions = counts1.size();
  result.scanned_blocks = scanned;
  if (counts1.empty() || n1 <= 0.0 || n2 <= 0.0) return result;

  // Normalized aggregate of absolute measure differences (FOCUS's
  // difference function f = |.|, aggregation = sum, scaled to [0, 1]).
  double diff = 0.0;
  double total = 0.0;
  for (size_t i = 0; i < counts1.size(); ++i) {
    const double s1 = counts1[i] / n1;
    const double s2 = counts2[i] / n2;
    diff += std::abs(s1 - s2);
    total += s1 + s2;
  }
  result.deviation = total > 0.0 ? diff / total : 0.0;

  const ChiSquareTestResult test =
      ChiSquareHomogeneity(counts1, n1, counts2, n2);
  result.significance = 1.0 - test.p_value;
  return result;
}

ItemsetModel FocusItemsets::MineModel(const TransactionBlock& block) const {
  return AprioriOnBlock(block, options_.minsup, options_.num_items);
}

DeviationResult FocusItemsets::Compare(const TransactionBlock& d1,
                                       const TransactionBlock& d2) const {
  const ItemsetModel m1 = MineModel(d1);
  const ItemsetModel m2 = MineModel(d2);
  return CompareWithModels(d1, m1, d2, m2);
}

DeviationResult FocusItemsets::CompareWithModels(const TransactionBlock& d1,
                                                 const ItemsetModel& m1,
                                                 const TransactionBlock& d2,
                                                 const ItemsetModel& m2) const {
  // Greatest common refinement: the union of the frequent itemsets of the
  // two models ("interesting regions" of either dataset).
  std::vector<Itemset> regions = m1.FrequentItemsets();
  {
    ItemsetSet seen(regions.begin(), regions.end());
    for (Itemset& itemset : m2.FrequentItemsets()) {
      if (seen.insert(itemset).second) regions.push_back(std::move(itemset));
    }
  }
  std::sort(regions.begin(), regions.end(), ItemsetLess());

  // Measures: supports on each side. A region frequent on only one side
  // may still be *tracked* by the other model (negative border carries
  // counts); only truly untracked regions force a scan of that block.
  std::vector<double> counts1(regions.size(), 0.0);
  std::vector<double> counts2(regions.size(), 0.0);
  std::vector<size_t> missing1;
  std::vector<size_t> missing2;
  for (size_t i = 0; i < regions.size(); ++i) {
    if (m1.Contains(regions[i])) {
      counts1[i] = static_cast<double>(m1.CountOf(regions[i]));
    } else {
      missing1.push_back(i);
    }
    if (m2.Contains(regions[i])) {
      counts2[i] = static_cast<double>(m2.CountOf(regions[i]));
    } else {
      missing2.push_back(i);
    }
  }
  bool scanned = false;
  if (!missing1.empty()) {
    std::vector<Itemset> todo;
    todo.reserve(missing1.size());
    for (size_t i : missing1) todo.push_back(regions[i]);
    const std::vector<uint64_t> counted = CountInBlock(todo, d1);
    for (size_t j = 0; j < missing1.size(); ++j) {
      counts1[missing1[j]] = static_cast<double>(counted[j]);
    }
    scanned = true;
  }
  if (!missing2.empty()) {
    std::vector<Itemset> todo;
    todo.reserve(missing2.size());
    for (size_t i : missing2) todo.push_back(regions[i]);
    const std::vector<uint64_t> counted = CountInBlock(todo, d2);
    for (size_t j = 0; j < missing2.size(); ++j) {
      counts2[missing2[j]] = static_cast<double>(counted[j]);
    }
    scanned = true;
  }

  return SummarizeRegionCounts(counts1, static_cast<double>(d1.size()), counts2,
                   static_cast<double>(d2.size()), scanned);
}

ClusterModel FocusClusters::MineModel(const PointBlock& block) const {
  auto alias = std::shared_ptr<const PointBlock>(
      std::shared_ptr<const PointBlock>(), &block);
  return RunBirch({alias}, options_.dim, options_.birch);
}

DeviationResult FocusClusters::Compare(const PointBlock& d1,
                                       const PointBlock& d2) const {
  const ClusterModel m1 = MineModel(d1);
  const ClusterModel m2 = MineModel(d2);
  return CompareWithModels(d1, m1, d2, m2);
}

DeviationResult FocusClusters::CompareWithModels(const PointBlock& d1,
                                                 const ClusterModel& m1,
                                                 const PointBlock& d2,
                                                 const ClusterModel& m2) const {
  // Common structural component: the union of both models' clusters,
  // interpreted as the Voronoi cells of their centroids. One scan of each
  // block measures the occupancy of every cell.
  std::vector<ClusterFeature> cells = m1.clusters();
  cells.insert(cells.end(), m2.clusters().begin(), m2.clusters().end());
  if (cells.empty()) return DeviationResult{};
  const ClusterModel refinement(std::move(cells));

  std::vector<double> counts1(refinement.NumClusters(), 0.0);
  std::vector<double> counts2(refinement.NumClusters(), 0.0);
  for (size_t i = 0; i < d1.size(); ++i) {
    counts1[refinement.Assign(d1.PointAt(i), d1.dim())] += 1.0;
  }
  for (size_t i = 0; i < d2.size(); ++i) {
    counts2[refinement.Assign(d2.PointAt(i), d2.dim())] += 1.0;
  }
  return SummarizeRegionCounts(counts1, static_cast<double>(d1.size()), counts2,
                   static_cast<double>(d2.size()), /*scanned=*/true);
}

}  // namespace demon
