#ifndef DEMON_DEVIATION_FOCUS_H_
#define DEMON_DEVIATION_FOCUS_H_

#include <memory>
#include <vector>

#include "clustering/birch.h"
#include "data/block.h"
#include "itemsets/itemset_model.h"

namespace demon {

/// \brief Outcome of a FOCUS comparison between two datasets
/// ([GGRL99a], used by DEMON §4 as the block similarity measure).
struct DeviationResult {
  /// Normalized aggregate measure difference over the common structural
  /// component, in [0, 1]: 0 = identical measures, 1 = disjoint.
  double deviation = 0.0;
  /// Statistical significance of the deviation: the confidence with which
  /// "both blocks come from the same generating process" is rejected
  /// (1 - p-value of a chi-square homogeneity test over the regions).
  /// The paper reports e.g. "as high as 99%" for the anomalous block.
  double significance = 0.0;
  /// Regions in the greatest common refinement.
  size_t num_regions = 0;
  /// Whether computing the missing measures required scanning the blocks
  /// (FOCUS needs at most one scan of each dataset; none when the two
  /// structural components coincide — the reason similar blocks compare
  /// fast in Figure 10).
  bool scanned_blocks = false;
};

/// \brief Folds two per-region count vectors into a DeviationResult:
/// normalized aggregate measure difference plus chi-square significance.
/// Shared by every FOCUS instantiation (itemsets, clusters, decision
/// trees). `n1`/`n2` are the dataset sizes.
DeviationResult SummarizeRegionCounts(const std::vector<double>& counts1,
                                      double n1,
                                      const std::vector<double>& counts2,
                                      double n2, bool scanned);

/// \brief FOCUS instantiated with frequent-itemset models.
///
/// Structural component: the set of frequent itemsets ("interesting
/// regions"); measure: their supports. The greatest common refinement of
/// two models is the union of their itemsets; measures missing on one side
/// are filled in with one scan of that block. Deviation is the normalized
/// sum of absolute support differences; significance comes from a
/// chi-square homogeneity test over the region counts (our stand-in for
/// FOCUS's bootstrap qualification — see DESIGN.md).
class FocusItemsets {
 public:
  struct Options {
    double minsup = 0.01;
    size_t num_items = 1000;
  };

  explicit FocusItemsets(const Options& options) : options_(options) {}

  /// Mines both blocks and compares them. Convenience for one-off use.
  DeviationResult Compare(const TransactionBlock& d1,
                          const TransactionBlock& d2) const;

  /// Compares two blocks whose models were already mined (the cached-model
  /// path the pattern detector uses; models must be the blocks' frequent
  /// itemsets at these options). Scans a block only for itemsets frequent
  /// in the other model but untracked in its own.
  DeviationResult CompareWithModels(const TransactionBlock& d1,
                                    const ItemsetModel& m1,
                                    const TransactionBlock& d2,
                                    const ItemsetModel& m2) const;

  /// Mines the frequent-itemset model of one block (exposed so callers can
  /// cache models across many comparisons).
  ItemsetModel MineModel(const TransactionBlock& block) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

/// \brief FOCUS instantiated with cluster models.
///
/// Structural component: the union of both models' clusters, treated as a
/// Voronoi partition by their centroids; measure: the fraction of a
/// block's points falling in each cell (one scan per block). Deviation
/// and significance as for itemsets.
class FocusClusters {
 public:
  struct Options {
    BirchOptions birch;
    size_t dim = 2;
  };

  explicit FocusClusters(const Options& options) : options_(options) {}

  DeviationResult Compare(const PointBlock& d1, const PointBlock& d2) const;

  DeviationResult CompareWithModels(const PointBlock& d1,
                                    const ClusterModel& m1,
                                    const PointBlock& d2,
                                    const ClusterModel& m2) const;

  ClusterModel MineModel(const PointBlock& block) const;

 private:
  Options options_;
};

}  // namespace demon

#endif  // DEMON_DEVIATION_FOCUS_H_
