#include "patterns/cyclic.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"

namespace demon {

std::vector<CyclicSequence> ExtractCyclicSequences(
    const std::vector<size_t>& sequence, size_t min_length) {
  std::vector<CyclicSequence> result;
  const size_t n = sequence.size();
  if (n < 2 || min_length < 2) return result;
  DEMON_CHECK(std::is_sorted(sequence.begin(), sequence.end()));

  std::unordered_set<size_t> members(sequence.begin(), sequence.end());

  // Longest-arithmetic-subsequence DP: chain[j][d] = length of the
  // longest progression with difference d ending at sequence[j].
  // Progressions must be contiguous in value space (every intermediate
  // multiple of d must be a member) — that is what makes them cycles.
  std::vector<std::unordered_map<size_t, size_t>> chain(n);
  // Track which (j, d) states are extended, so only maximal chains emit.
  std::vector<std::unordered_map<size_t, bool>> extended(n);

  for (size_t j = 1; j < n; ++j) {
    for (size_t i = 0; i < j; ++i) {
      const size_t d = sequence[j] - sequence[i];
      if (d == 0) continue;
      const auto it = chain[i].find(d);
      const size_t length = (it != chain[i].end() ? it->second : 1) + 1;
      auto [slot, inserted] = chain[j].emplace(d, length);
      if (!inserted && slot->second < length) slot->second = length;
      // The chain ending at i with difference d is extendable, hence not
      // maximal; right-maximal chains are the only ones reported (left
      // maximality is implied by the DP taking the longest predecessor).
      extended[i][d] = true;
    }
  }

  for (size_t j = 0; j < n; ++j) {
    for (const auto& [d, length] : chain[j]) {
      if (length < min_length) continue;
      if (extended[j].count(d) > 0 && extended[j].at(d)) continue;  // not maximal
      // A chain ending at j with difference d and `length` elements:
      // reconstruct by stepping backwards.
      CyclicSequence cyclic;
      cyclic.period = d;
      size_t value = sequence[j];
      for (size_t step = 0; step < length; ++step) {
        cyclic.blocks.push_back(value);
        if (step + 1 < length) {
          DEMON_CHECK(members.count(value - d) > 0);
          value -= d;
        }
      }
      std::reverse(cyclic.blocks.begin(), cyclic.blocks.end());
      result.push_back(std::move(cyclic));
    }
  }

  std::sort(result.begin(), result.end(),
            [](const CyclicSequence& a, const CyclicSequence& b) {
              if (a.blocks.size() != b.blocks.size()) {
                return a.blocks.size() > b.blocks.size();
              }
              if (a.blocks.empty()) return false;
              if (a.blocks[0] != b.blocks[0]) return a.blocks[0] < b.blocks[0];
              return a.period < b.period;
            });
  return result;
}

}  // namespace demon
