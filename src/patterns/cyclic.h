#ifndef DEMON_PATTERNS_CYCLIC_H_
#define DEMON_PATTERNS_CYCLIC_H_

#include <cstddef>
#include <vector>

namespace demon {

/// \brief A cyclic pattern extracted from a compact sequence: block
/// indices in arithmetic progression (every `period` blocks).
struct CyclicSequence {
  std::vector<size_t> blocks;
  size_t period = 0;
};

/// \brief Post-processes a compact sequence into its cyclic subsequences
/// (paper §4: "if <D1, D3, D4, D5, D7> is a compact sequence, we can
/// easily derive the cyclic sequence <D1, D3, D5, D7>").
///
/// Returns every maximal arithmetic subsequence of `sequence` with at
/// least `min_length` elements, ordered by decreasing length then by
/// start. Maximal means not extensible within `sequence` on either side
/// and not a sub-progression reported within a longer returned one with
/// the same period.
std::vector<CyclicSequence> ExtractCyclicSequences(
    const std::vector<size_t>& sequence, size_t min_length = 3);

}  // namespace demon

#endif  // DEMON_PATTERNS_CYCLIC_H_
