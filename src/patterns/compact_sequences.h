#ifndef DEMON_PATTERNS_COMPACT_SEQUENCES_H_
#define DEMON_PATTERNS_COMPACT_SEQUENCES_H_

#include <memory>
#include <vector>

#include "common/telemetry.h"
#include "deviation/focus.h"
#include "persistence/serializer.h"

namespace demon {

/// \brief Similarity verdict between two blocks (paper Definition 4.1):
/// blocks are M-similar at level alpha when the statistical significance
/// of their deviation stays below alpha — i.e. we cannot confidently
/// reject that both come from the same generating process.
struct PairwiseSimilarity {
  DeviationResult deviation;
  bool similar = false;
};

/// \brief Incremental miner of all compact block sequences under the
/// unrestricted-window option (paper §4).
///
/// A sequence S of blocks is *compact* when (1) every pair of blocks in S
/// is similar, and (2) every block between the first and last of S that is
/// missing from S is dissimilar to at least one earlier member of S — "no
/// holes". The miner maintains one sequence per start block: when block
/// D_{t+1} arrives it computes the deviation between D_{t+1} and every
/// earlier block (caching per-block models, so unchanged blocks are never
/// re-mined), starts the new singleton sequence, and extends every
/// existing sequence whose extension stays compact — exactly the paper's
/// inductive algorithm, including the pairwise-deviation matrix.
class CompactSequenceMiner {
 public:
  struct Options {
    FocusItemsets::Options focus;
    /// Similarity level alpha of Definition 4.1; blocks are similar when
    /// deviation significance < alpha.
    double alpha = 0.95;
    /// 0 = unrestricted window (paper's main algorithm). A positive value
    /// w restricts pattern detection to the most recent w blocks
    /// (footnote 9's "easily extended" variant): evicted blocks leave
    /// every sequence and their cached models are released.
    size_t window_size = 0;
  };

  explicit CompactSequenceMiner(const Options& options)
      : options_(options), focus_(options.focus) {}

  /// Adds the next block (index t = number of blocks added so far).
  void AddBlock(std::shared_ptr<const TransactionBlock> block);

  size_t NumBlocks() const { return blocks_.size(); }

  /// All maintained sequences, as 0-based block indices in increasing
  /// order. Under the unrestricted window, sequences_[i] starts at block
  /// i; under a most-recent window, only sequences over in-window blocks
  /// are kept (ordered by start block).
  const std::vector<std::vector<size_t>>& sequences() const {
    return sequences_;
  }

  /// First block index still inside the window (0 when unrestricted).
  size_t window_start() const { return window_start_; }

  /// Maximal sequences only (those not a subset of another maintained
  /// sequence) with at least `min_length` blocks — the presentation-level
  /// filter used for Figure 9 style reports.
  std::vector<std::vector<size_t>> MaximalSequences(
      size_t min_length = 2) const;

  /// Pairwise similarity between blocks i and j (i != j).
  const PairwiseSimilarity& Similarity(size_t i, size_t j) const;
  bool Similar(size_t i, size_t j) const {
    return Similarity(i, j).similar;
  }

  /// Wall time of the last AddBlock call (Figure 10's per-block cost).
  double last_add_seconds() const { return last_add_seconds_; }
  /// Whether the last AddBlock needed block scans (dissimilar blocks force
  /// scans; the cause of Figure 10's spikes).
  size_t last_scan_count() const { return last_scan_count_; }

  /// Checks Definition 4.1 against the miner's own similarity matrix —
  /// used by tests and assertions.
  bool IsCompact(const std::vector<size_t>& sequence) const;

  /// Serializes the miner's dynamic state: window start, block references
  /// (evicted positions marked absent), cached per-block models, the full
  /// pairwise deviation matrix, and the maintained sequences. Blocks are
  /// stored as ids; the checkpoint container persists them once.
  void SaveState(persistence::Writer& w) const;

  /// Restores state saved by SaveState into a freshly constructed miner
  /// with the same options, re-acquiring blocks through the Reader's
  /// transaction BlockSource.
  [[nodiscard]] Status LoadState(persistence::Reader& r);

  const std::vector<std::shared_ptr<const TransactionBlock>>& blocks() const {
    return blocks_;
  }

  /// Binds `registry` for the per-block span and the
  /// `patterns/add_seconds` histogram. last_add_seconds() stays available
  /// in every build; no-op under DEMON_TELEMETRY=OFF.
  void set_telemetry([[maybe_unused]] telemetry::TelemetryRegistry* registry) {
    if constexpr (telemetry::kEnabled) {
      telemetry_ = registry;
      add_hist_ = registry == nullptr
                      ? nullptr
                      : registry->histogram("patterns/add_seconds");
    }
  }

 private:
  /// Rebuilds sequences_ over [window_start_, blocks_.size()) from the
  /// similarity matrix (used after evictions).
  void RebuildSequences();

  Options options_;
  FocusItemsets focus_;
  size_t window_start_ = 0;
  std::vector<std::shared_ptr<const TransactionBlock>> blocks_;
  std::vector<ItemsetModel> models_;
  /// Upper-triangular pairwise matrix: pair_[j] holds similarities of
  /// block j with blocks 0..j-1.
  std::vector<std::vector<PairwiseSimilarity>> pair_;
  std::vector<std::vector<size_t>> sequences_;
  double last_add_seconds_ = 0.0;
  size_t last_scan_count_ = 0;
  /// Null in DEMON_TELEMETRY=OFF builds (see set_telemetry).
  telemetry::TelemetryRegistry* telemetry_ = nullptr;
  telemetry::Histogram* add_hist_ = nullptr;
};

}  // namespace demon

#endif  // DEMON_PATTERNS_COMPACT_SEQUENCES_H_
