#ifndef DEMON_PATTERNS_GRANULARITY_H_
#define DEMON_PATTERNS_GRANULARITY_H_

#include <vector>

#include "data/block.h"
#include "patterns/compact_sequences.h"

namespace demon {

/// \brief Quality of the pattern structure a block granularity exposes:
/// the fraction of blocks that chain with at least one other block (i.e.
/// belong to some maximal compact sequence of length >= 2). 0 = every
/// block is a singleton; 1 = every block participates in a pattern.
double ChainingScore(const CompactSequenceMiner& miner);

/// \brief Report for one candidate granularity.
struct GranularityReport {
  int granularity_hours = 0;
  size_t num_blocks = 0;
  size_t num_maximal_sequences = 0;
  size_t longest_sequence = 0;
  double chaining_score = 0.0;
  /// The selection objective: chaining_score x separation, where
  /// separation = 1 - longest_sequence / num_blocks. It rewards blocks
  /// chaining within regimes while regimes stay distinct; ties break
  /// toward the earlier (coarser, cheaper) candidate.
  double objective = 0.0;
};

/// \brief Automatic block-granularity selection (the paper's §7 future
/// work item 2): segments pre-blocked inputs at each candidate
/// granularity, mines compact sequences, and scores the structure.
///
/// `blocks_per_granularity[i]` holds the block sequence at candidate i
/// (the caller segments, e.g. with SegmentTrace, since segmentation is
/// data-source specific). Returns per-candidate reports, ordered as
/// given; `best_index` receives the argmax of the objective.
std::vector<GranularityReport> EvaluateGranularities(
    const std::vector<std::vector<TransactionBlock>>& blocks_per_granularity,
    const std::vector<int>& granularity_hours,
    const CompactSequenceMiner::Options& options, size_t* best_index);

}  // namespace demon

#endif  // DEMON_PATTERNS_GRANULARITY_H_
