#include "patterns/granularity.h"

#include <memory>

#include "common/check.h"

namespace demon {

double ChainingScore(const CompactSequenceMiner& miner) {
  const size_t n = miner.NumBlocks();
  if (n <= 1) return 0.0;
  // Fraction of blocks that chain with at least one other block (belong
  // to some maximal sequence of length >= 2). Sequences overlap, so the
  // union is what counts.
  std::vector<bool> covered(n, false);
  for (const auto& sequence : miner.MaximalSequences(/*min_length=*/2)) {
    for (size_t index : sequence) covered[index] = true;
  }
  size_t chained = 0;
  for (bool c : covered) chained += c ? 1 : 0;
  return static_cast<double>(chained) / static_cast<double>(n);
}

std::vector<GranularityReport> EvaluateGranularities(
    const std::vector<std::vector<TransactionBlock>>& blocks_per_granularity,
    const std::vector<int>& granularity_hours,
    const CompactSequenceMiner::Options& options, size_t* best_index) {
  DEMON_CHECK(blocks_per_granularity.size() == granularity_hours.size());
  DEMON_CHECK(!blocks_per_granularity.empty());

  std::vector<GranularityReport> reports;
  reports.reserve(blocks_per_granularity.size());
  for (size_t g = 0; g < blocks_per_granularity.size(); ++g) {
    CompactSequenceMiner miner(options);
    for (const TransactionBlock& block : blocks_per_granularity[g]) {
      miner.AddBlock(std::make_shared<TransactionBlock>(block));
    }
    GranularityReport report;
    report.granularity_hours = granularity_hours[g];
    report.num_blocks = miner.NumBlocks();
    const auto maximal = miner.MaximalSequences(2);
    report.num_maximal_sequences = maximal.size();
    for (const auto& sequence : maximal) {
      report.longest_sequence =
          std::max(report.longest_sequence, sequence.size());
    }
    report.chaining_score = ChainingScore(miner);
    // Coverage x separation: blocks should chain (regimes are consistent)
    // without one sequence swallowing everything (regimes are distinct).
    const double separation =
        report.num_blocks == 0
            ? 0.0
            : 1.0 - static_cast<double>(report.longest_sequence) /
                        static_cast<double>(report.num_blocks);
    report.objective = report.chaining_score * separation;
    reports.push_back(report);
  }

  if (best_index != nullptr) {
    *best_index = 0;
    for (size_t g = 1; g < reports.size(); ++g) {
      // Strict improvement required: ties go to the earlier (by
      // convention coarser, hence cheaper) candidate.
      if (reports[g].objective > reports[*best_index].objective) {
        *best_index = g;
      }
    }
  }
  return reports;
}

}  // namespace demon
