#include "patterns/compact_sequences.h"

#include <algorithm>

#include "common/check.h"
#include "common/telemetry.h"
#include "itemsets/model_io.h"
#include "persistence/block_codec.h"

namespace demon {

const PairwiseSimilarity& CompactSequenceMiner::Similarity(size_t i,
                                                           size_t j) const {
  DEMON_CHECK(i != j);
  if (i > j) std::swap(i, j);
  DEMON_CHECK(j < pair_.size());
  return pair_[j][i];
}

void CompactSequenceMiner::AddBlock(
    std::shared_ptr<const TransactionBlock> block) {
  DEMON_TRACE_SPAN(span, telemetry_, "patterns-add", "patterns");
  telemetry::ScopedTimer timer(add_hist_);
  last_scan_count_ = 0;

  const size_t t = blocks_.size();
  blocks_.push_back(block);
  models_.push_back(focus_.MineModel(*block));

  // Augment the deviation matrix with row t (paper §4: deviations of
  // D_{t+1} against every earlier in-window block; earlier models come
  // from cache).
  std::vector<PairwiseSimilarity> row(t);
  for (size_t i = window_start_; i < t; ++i) {
    row[i].deviation = focus_.CompareWithModels(*blocks_[i], models_[i],
                                                *blocks_[t], models_[t]);
    row[i].similar = row[i].deviation.significance < options_.alpha;
    if (row[i].deviation.scanned_blocks) ++last_scan_count_;
  }
  pair_.push_back(std::move(row));

  // Most-recent-window variant (footnote 9): evict blocks that fell out
  // of the window and rebuild the sequence set from the cached matrix.
  if (options_.window_size > 0 && t + 1 > options_.window_size) {
    const size_t new_start = t + 1 - options_.window_size;
    for (size_t i = window_start_; i < new_start; ++i) {
      blocks_[i].reset();
      models_[i] = ItemsetModel();
    }
    window_start_ = new_start;
    RebuildSequences();
    last_add_seconds_ = timer.Stop();
    return;
  }

  // Extend every sequence whose extension with block t stays compact.
  for (std::vector<size_t>& sequence : sequences_) {
    // (1) t must be similar to every member.
    bool all_similar = true;
    for (size_t member : sequence) {
      if (!Similar(member, t)) {
        all_similar = false;
        break;
      }
    }
    if (!all_similar) continue;
    // (2) no holes: every block strictly between the old tail and t that
    // is skipped must be dissimilar to at least one member before it.
    // (Gaps inside the old sequence were validated when it was formed.)
    bool no_holes = true;
    for (size_t skipped = sequence.back() + 1; skipped < t && no_holes;
         ++skipped) {
      bool excused = false;
      for (size_t member : sequence) {
        if (member < skipped && !Similar(member, skipped)) {
          excused = true;
          break;
        }
      }
      no_holes = excused;
    }
    if (no_holes) sequence.push_back(t);
  }
  // The new singleton sequence G_{t+1}.
  sequences_.push_back({t});

  last_add_seconds_ = timer.Stop();
}

void CompactSequenceMiner::RebuildSequences() {
  // Replay the inductive construction over the in-window blocks using the
  // retained similarity matrix — no deviations are recomputed. This keeps
  // the same semantics as the unrestricted algorithm restricted to the
  // window (a plain suffix-trim of a compact sequence can violate the
  // no-holes condition, so trimming is not enough).
  sequences_.clear();
  const size_t end = blocks_.size();
  for (size_t t = window_start_; t < end; ++t) {
    for (std::vector<size_t>& sequence : sequences_) {
      bool all_similar = true;
      for (size_t member : sequence) {
        if (!Similar(member, t)) {
          all_similar = false;
          break;
        }
      }
      if (!all_similar) continue;
      bool no_holes = true;
      for (size_t skipped = sequence.back() + 1; skipped < t && no_holes;
           ++skipped) {
        bool excused = false;
        for (size_t member : sequence) {
          if (member < skipped && !Similar(member, skipped)) {
            excused = true;
            break;
          }
        }
        no_holes = excused;
      }
      if (no_holes) sequence.push_back(t);
    }
    sequences_.push_back({t});
  }
}

bool CompactSequenceMiner::IsCompact(
    const std::vector<size_t>& sequence) const {
  if (sequence.empty()) return false;
  // (1) pairwise similarity.
  for (size_t a = 0; a < sequence.size(); ++a) {
    for (size_t b = a + 1; b < sequence.size(); ++b) {
      if (!Similar(sequence[a], sequence[b])) return false;
    }
  }
  // (2) no holes between first and last.
  for (size_t candidate = sequence.front() + 1; candidate < sequence.back();
       ++candidate) {
    if (std::binary_search(sequence.begin(), sequence.end(), candidate)) {
      continue;
    }
    bool excused = false;
    for (size_t member : sequence) {
      if (member >= candidate) break;
      if (!Similar(member, candidate)) {
        excused = true;
        break;
      }
    }
    if (!excused) return false;
  }
  return true;
}

void CompactSequenceMiner::SaveState(persistence::Writer& w) const {
  w.WriteU64(window_start_);
  w.WriteU64(blocks_.size());
  for (const auto& block : blocks_) {
    w.WriteBool(block != nullptr);
    if (block != nullptr) w.WriteU32(block->info().id);
  }
  // Cached models only exist for in-window blocks (evicted ones were
  // released); absent positions restore to the empty model.
  for (size_t i = 0; i < blocks_.size(); ++i) {
    if (blocks_[i] != nullptr) SerializeItemsetModel(w, models_[i]);
  }
  for (const auto& row : pair_) {
    for (const PairwiseSimilarity& sim : row) {
      w.WriteDouble(sim.deviation.deviation);
      w.WriteDouble(sim.deviation.significance);
      w.WriteU64(sim.deviation.num_regions);
      w.WriteBool(sim.deviation.scanned_blocks);
      w.WriteBool(sim.similar);
    }
  }
  w.WriteU64(sequences_.size());
  for (const auto& sequence : sequences_) {
    w.WriteU64(sequence.size());
    for (const size_t index : sequence) w.WriteU64(index);
  }
}

Status CompactSequenceMiner::LoadState(persistence::Reader& r) {
  if (!blocks_.empty()) {
    return Status::FailedPrecondition(
        "pattern-miner state can only be restored into a fresh miner");
  }
  const persistence::BlockSource* source = r.block_source();
  if (source == nullptr || !source->transactions) {
    return Status::FailedPrecondition(
        "no transaction block source bound to the reader");
  }
  window_start_ = r.ReadU64();
  const size_t num_blocks = r.ReadLength(1);
  if (!r.ok()) return r.status();
  if (window_start_ > num_blocks) {
    return Status::DataLoss("pattern-miner window start past the blocks");
  }
  blocks_.reserve(num_blocks);
  for (size_t i = 0; i < num_blocks; ++i) {
    const bool present = r.ReadBool();
    if (!r.ok()) return r.status();
    if (!present) {
      blocks_.emplace_back();
      continue;
    }
    const BlockId id = r.ReadU32();
    if (!r.ok()) return r.status();
    DEMON_ASSIGN_OR_RETURN(auto block, source->transactions(id));
    blocks_.push_back(std::move(block));
  }
  models_.resize(num_blocks);
  for (size_t i = 0; i < num_blocks; ++i) {
    if (blocks_[i] == nullptr) continue;
    DeserializeItemsetModel(r, &models_[i]);
    if (!r.ok()) return r.status();
  }
  pair_.resize(num_blocks);
  for (size_t j = 0; j < num_blocks; ++j) {
    pair_[j].resize(j);
    for (size_t i = 0; i < j; ++i) {
      PairwiseSimilarity& sim = pair_[j][i];
      sim.deviation.deviation = r.ReadDouble();
      sim.deviation.significance = r.ReadDouble();
      sim.deviation.num_regions = r.ReadU64();
      sim.deviation.scanned_blocks = r.ReadBool();
      sim.similar = r.ReadBool();
    }
    if (!r.ok()) return r.status();
  }
  const size_t num_sequences = r.ReadLength(sizeof(uint64_t));
  if (!r.ok()) return r.status();
  sequences_.resize(num_sequences);
  for (size_t s = 0; s < num_sequences; ++s) {
    const size_t length = r.ReadLength(sizeof(uint64_t));
    if (!r.ok()) return r.status();
    sequences_[s].reserve(length);
    for (size_t i = 0; i < length; ++i) {
      const uint64_t index = r.ReadU64();
      if (index >= num_blocks) {
        return Status::DataLoss("sequence references a block out of range");
      }
      sequences_[s].push_back(static_cast<size_t>(index));
    }
  }
  return r.status();
}

std::vector<std::vector<size_t>> CompactSequenceMiner::MaximalSequences(
    size_t min_length) const {
  std::vector<std::vector<size_t>> result;
  for (size_t i = 0; i < sequences_.size(); ++i) {
    const auto& candidate = sequences_[i];
    if (candidate.size() < min_length) continue;
    bool dominated = false;
    for (size_t j = 0; j < sequences_.size() && !dominated; ++j) {
      if (i == j) continue;
      const auto& other = sequences_[j];
      if (other.size() > candidate.size()) {
        dominated = std::includes(other.begin(), other.end(),
                                  candidate.begin(), candidate.end());
      } else if (j < i && other == candidate) {
        dominated = true;  // exact duplicate, keep the earliest
      }
    }
    if (!dominated) result.push_back(candidate);
  }
  return result;
}

}  // namespace demon
