#!/usr/bin/env bash
# Crash-injection test for the checkpoint/WAL durability path.
#
#   scripts/crash_recovery_test.sh [build-dir]
#
# Generates a small multi-block transaction stream, then:
#   1. Reference run: feeds the whole stream uninterrupted and writes a
#      final checkpoint (demon_cli checkpoint).
#   2. Crash run: feeds the same stream with a WAL attached and periodic
#      checkpoints (--checkpoint_every), paced by --block_delay_ms, and
#      kills the process with SIGKILL mid-stream.
#   3. Recovery run: restores from the last periodic checkpoint, replays
#      the WAL, feeds the remaining blocks, and writes a final checkpoint.
#
# Checkpoint bytes are deterministic (sorted model serialization; stats
# and telemetry are not checkpointed), so the test passes iff the
# recovered run's final checkpoint is byte-identical to the reference
# run's. Several kill points are exercised so the SIGKILL lands in
# different phases (mid-WAL-append, mid-checkpoint, between blocks).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
cli="$build_dir/examples/demon_cli"

if [[ ! -x "$cli" ]]; then
  echo "error: $cli not found; build the repo first" \
       "(cmake -B build -S . && cmake --build build -j)" >&2
  exit 1
fi

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

# --- The evolving database: 6 blocks, one transaction file each. --------
num_blocks=6
data_files=()
for b in $(seq 1 "$num_blocks"); do
  f="$work/block_$b.txn"
  "$cli" gen --out "$f" --transactions 400 --items 60 --patterns 40 \
    --len 6 --seed "$((1000 + b))" >/dev/null
  data_files+=("$f")
done
data="$(IFS=,; echo "${data_files[*]}")"
# A tiny TID-list memory budget keeps the paging tier in the loop: the
# monitors spill/fault extents throughout, and recovery must still be
# byte-identical (budgets shape residency, never counts or checkpoints).
fleet_flags=(--minsup 0.02 --window 3 --alpha 0.95 --tidlist_budget 2048)

# --- 1. Uninterrupted reference. ----------------------------------------
"$cli" checkpoint --data "$data" "${fleet_flags[@]}" \
  --out "$work/reference.ckpt" >/dev/null
echo "reference checkpoint written"

delay_ms=250
failures=0
for kill_after_ms in 400 800 1200; do
  run="$work/run_$kill_after_ms"
  mkdir -p "$run"
  ckpt="$run/periodic.ckpt"
  wal="$run/arrivals.wal"

  # --- 2. Crash run: SIGKILL mid-stream. --------------------------------
  "$cli" monitor --data "$data" "${fleet_flags[@]}" \
    --wal "$wal" --checkpoint "$ckpt" --checkpoint_every 2 \
    --block_delay_ms "$delay_ms" >/dev/null 2>&1 &
  pid=$!
  sleep "$(awk "BEGIN {print $kill_after_ms / 1000}")"
  if kill -9 "$pid" 2>/dev/null; then
    echo "kill@${kill_after_ms}ms: SIGKILL delivered mid-stream"
  else
    echo "kill@${kill_after_ms}ms: run finished before the kill landed"
  fi
  wait "$pid" 2>/dev/null || true

  # --- 3. Recover and finish the stream. --------------------------------
  restore_flags=()
  if [[ -f "$ckpt" ]]; then
    restore_flags+=(--restore "$ckpt")
    [[ -f "$wal" ]] && restore_flags+=(--wal "$wal")
  fi
  if ! "$cli" checkpoint --data "$data" "${fleet_flags[@]}" \
      "${restore_flags[@]}" --out "$run/recovered.ckpt" >/dev/null; then
    echo "kill@${kill_after_ms}ms: FAIL (recovery run errored)"
    failures=$((failures + 1))
    continue
  fi

  if cmp -s "$work/reference.ckpt" "$run/recovered.ckpt"; then
    echo "kill@${kill_after_ms}ms: OK (recovered checkpoint is" \
         "byte-identical to the uninterrupted run)"
  else
    echo "kill@${kill_after_ms}ms: FAIL (recovered checkpoint differs" \
         "from the uninterrupted run)"
    failures=$((failures + 1))
  fi
done

if [[ "$failures" -ne 0 ]]; then
  echo "crash recovery test: $failures kill point(s) FAILED" >&2
  exit 1
fi
echo "crash recovery test: all kill points recovered bit-identically"
