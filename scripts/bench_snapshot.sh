#!/usr/bin/env bash
# Snapshot the counting-kernel and engine benchmarks as JSON artifacts at
# the repo root, so perf regressions across PRs can be diffed mechanically.
#
#   scripts/bench_snapshot.sh [build-dir]
#
# Runs bench/fig2_counting (google-benchmark JSON, includes the
# thread-count sweep) into BENCH_counting.json, bench/engine_throughput
# (its own --benchmark_format=json mode) into BENCH_engine.json, and
# bench/tidlist_budget (the TID-list memory-budget sweep) into
# BENCH_tidlist.json. Honors DEMON_SCALE (default 0.1); set DEMON_SCALE=1
# for paper-scale runs.
#
# Also archives the telemetry artifacts of an instrumented 4-thread engine
# run: BENCH_telemetry.json (per-phase histogram summaries) and Chrome
# trace-event files BENCH_engine_trace.json / BENCH_counting_trace.json
# (load at https://ui.perfetto.dev). Requires a DEMON_TELEMETRY=ON build
# (the default); with the gate off the traces are empty but still valid.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

if [[ ! -x "$build_dir/bench/fig2_counting" ]]; then
  echo "error: $build_dir/bench/fig2_counting not found; build the repo" \
       "first (cmake -B build -S . && cmake --build build -j)" >&2
  exit 1
fi

echo "== fig2_counting -> BENCH_counting.json (DEMON_SCALE=${DEMON_SCALE:-0.1})"
"$build_dir/bench/fig2_counting" \
  --benchmark_format=json \
  --benchmark_out="$repo_root/BENCH_counting.json" \
  --benchmark_out_format=json \
  --trace_out="$repo_root/BENCH_counting_trace.json" >/dev/null

echo "== engine_throughput -> BENCH_engine.json + telemetry artifacts"
"$build_dir/bench/engine_throughput" --benchmark_format=json \
  --trace_out="$repo_root/BENCH_engine_trace.json" \
  --histogram_out="$repo_root/BENCH_telemetry.json" \
  > "$repo_root/BENCH_engine.json"

echo "== tidlist_budget -> BENCH_tidlist.json"
"$build_dir/bench/tidlist_budget" \
  --json_out="$repo_root/BENCH_tidlist.json"

echo "wrote $repo_root/BENCH_counting.json"
echo "wrote $repo_root/BENCH_counting_trace.json"
echo "wrote $repo_root/BENCH_engine.json"
echo "wrote $repo_root/BENCH_engine_trace.json"
echo "wrote $repo_root/BENCH_telemetry.json"
echo "wrote $repo_root/BENCH_tidlist.json"
