#!/usr/bin/env bash
# Snapshot the counting-kernel and engine benchmarks as JSON artifacts at
# the repo root, so perf regressions across PRs can be diffed mechanically.
#
#   scripts/bench_snapshot.sh [--allow-debug] [build-dir]
#
# Refuses to snapshot from a non-Release build (debug numbers have burned
# us before: the seed BENCH_counting.json was captured from a debug
# build). Pass --allow-debug to override when you knowingly want a
# debug-build snapshot.
#
# Runs bench/fig2_counting (google-benchmark JSON, includes the
# thread-count sweep) into BENCH_counting.json, bench/intersect_kernels
# (scalar vs dispatched intersection kernels) into BENCH_intersect.json,
# bench/engine_throughput (its own --benchmark_format=json mode) into
# BENCH_engine.json, bench/tidlist_budget (the TID-list memory-budget
# sweep) into BENCH_tidlist.json, and bench/server_throughput (the
# demon_serve socket-ingestion sweep) into BENCH_server.json. Honors
# DEMON_SCALE (default 0.1); set DEMON_SCALE=1 for paper-scale runs.
#
# Every BENCH_*.json gets its "context" block stamped with the repo's
# CMAKE_BUILD_TYPE, num_cpus, and the git SHA of the worktree the
# snapshot ran from, so a stale or debug artifact is self-identifying.
#
# Also archives the telemetry artifacts of an instrumented 4-thread engine
# run: BENCH_telemetry.json (per-phase histogram summaries), Chrome
# trace-event files BENCH_engine_trace.json / BENCH_counting_trace.json
# (load at https://ui.perfetto.dev; the engine trace carries the
# scraper's counter tracks), and BENCH_engine_timeline.jsonl (the JSONL
# metrics timeline of the same run). Requires a DEMON_TELEMETRY=ON build
# (the default); with the gate off the traces are empty but still valid.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

allow_debug=0
build_dir=""
for arg in "$@"; do
  case "$arg" in
    --allow-debug) allow_debug=1 ;;
    -*) echo "error: unknown flag $arg" >&2; exit 2 ;;
    *) build_dir="$arg" ;;
  esac
done
build_dir="${build_dir:-$repo_root/build}"

cache="$build_dir/CMakeCache.txt"
if [[ ! -f "$cache" ]]; then
  echo "error: $cache not found; build the repo first" \
       "(cmake -B build -S . && cmake --build build -j)" >&2
  exit 1
fi
build_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$cache")"
build_type="${build_type:-unspecified}"
if [[ "$build_type" != "Release" && "$allow_debug" -ne 1 ]]; then
  echo "error: build dir $build_dir has CMAKE_BUILD_TYPE=$build_type;" \
       "benchmark snapshots must come from a Release build." >&2
  echo "Reconfigure with -DCMAKE_BUILD_TYPE=Release, or pass" \
       "--allow-debug to snapshot anyway (the JSON will say so)." >&2
  exit 1
fi

if [[ ! -x "$build_dir/bench/fig2_counting" ]]; then
  echo "error: $build_dir/bench/fig2_counting not found; build the repo" \
       "first (cmake -B build -S . && cmake --build build -j)" >&2
  exit 1
fi

echo "== fig2_counting -> BENCH_counting.json (DEMON_SCALE=${DEMON_SCALE:-0.1})"
"$build_dir/bench/fig2_counting" \
  --benchmark_format=json \
  --benchmark_out="$repo_root/BENCH_counting.json" \
  --benchmark_out_format=json \
  --trace_out="$repo_root/BENCH_counting_trace.json" >/dev/null

echo "== intersect_kernels -> BENCH_intersect.json"
"$build_dir/bench/intersect_kernels" \
  --benchmark_format=json \
  --benchmark_out="$repo_root/BENCH_intersect.json" \
  --benchmark_out_format=json >/dev/null

echo "== engine_throughput -> BENCH_engine.json + telemetry artifacts"
"$build_dir/bench/engine_throughput" --benchmark_format=json \
  --trace_out="$repo_root/BENCH_engine_trace.json" \
  --histogram_out="$repo_root/BENCH_telemetry.json" \
  --timeline_out="$repo_root/BENCH_engine_timeline.jsonl" \
  > "$repo_root/BENCH_engine.json"

echo "== tidlist_budget -> BENCH_tidlist.json"
"$build_dir/bench/tidlist_budget" \
  --json_out="$repo_root/BENCH_tidlist.json"

echo "== server_throughput -> BENCH_server.json"
server_scratch="$(mktemp -d)"
"$build_dir/bench/server_throughput" --benchmark_format=json \
  --data_dir="$server_scratch" > "$repo_root/BENCH_server.json"
rm -rf "$server_scratch"

# Stamp provenance into every artifact's context block. Trace files are
# Chrome trace-event JSON with no context object and are left alone.
git_sha="$(git -C "$repo_root" rev-parse --short HEAD 2>/dev/null || echo unknown)"
num_cpus="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN)"
echo "== stamping context (build_type=$build_type num_cpus=$num_cpus sha=$git_sha)"
python3 - "$build_type" "$num_cpus" "$git_sha" "$repo_root"/BENCH_*.json <<'EOF'
import json
import sys

build_type, num_cpus, git_sha = sys.argv[1:4]
for path in sys.argv[4:]:
    if path.endswith("_trace.json"):
        continue
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict):
        continue
    ctx = doc.setdefault("context", {})
    ctx["demon_build_type"] = build_type
    ctx["num_cpus"] = int(num_cpus)
    ctx["git_sha"] = git_sha
    with open(path, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
EOF

echo "wrote $repo_root/BENCH_counting.json"
echo "wrote $repo_root/BENCH_counting_trace.json"
echo "wrote $repo_root/BENCH_intersect.json"
echo "wrote $repo_root/BENCH_engine.json"
echo "wrote $repo_root/BENCH_engine_trace.json"
echo "wrote $repo_root/BENCH_engine_timeline.jsonl"
echo "wrote $repo_root/BENCH_telemetry.json"
echo "wrote $repo_root/BENCH_tidlist.json"
echo "wrote $repo_root/BENCH_server.json"
