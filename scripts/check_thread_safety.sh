#!/usr/bin/env bash
# Negative-compilation harness for the thread-safety annotation layer
# (src/common/sync.h).
#
# Two directions, both required:
#   1. tests/thread_safety/ts_positive.cc — includes every annotated repo
#      header plus a correct capability user; must COMPILE cleanly under
#      -Wthread-safety -Wthread-safety-beta -Werror.
#   2. tests/thread_safety/bad_*.cc — deliberately seeded violations (an
#      unguarded write, a REQUIRES method called unlocked, an inverted
#      ACQUIRED_BEFORE order); each must FAIL to compile, and fail with a
#      thread-safety diagnostic (an unrelated syntax error would be a
#      false pass).
#
# Needs clang++ (the analysis is clang-only). When no clang is on PATH the
# script prints SKIP and exits 0 so developer machines without clang are
# not blocked; CI installs clang, so there the checks always run.

set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
clangxx="${CLANGXX:-clang++}"

if ! command -v "$clangxx" >/dev/null 2>&1; then
  echo "SKIP: $clangxx not found; thread-safety analysis needs clang"
  exit 0
fi

flags=(
  -std=c++20
  -fsyntax-only
  -I "$root/src"
  -Wall -Wextra -Wno-missing-field-initializers
  -Wthread-safety -Wthread-safety-beta
  -Werror
)

failures=0

check_compiles() {
  local file="$1"
  local out
  if out=$("$clangxx" "${flags[@]}" "$file" 2>&1); then
    echo "PASS: $(basename "$file") compiles cleanly"
  else
    echo "FAIL: $(basename "$file") should compile under -Wthread-safety"
    echo "$out" | sed 's/^/    /'
    failures=$((failures + 1))
  fi
}

check_rejected() {
  local file="$1"
  local out
  if out=$("$clangxx" "${flags[@]}" "$file" 2>&1); then
    echo "FAIL: $(basename "$file") compiled — seeded violation not caught"
    failures=$((failures + 1))
  elif ! grep -q "thread-safety" <<<"$out"; then
    echo "FAIL: $(basename "$file") rejected, but not by the thread-safety" \
         "analysis:"
    echo "$out" | sed 's/^/    /'
    failures=$((failures + 1))
  else
    echo "PASS: $(basename "$file") rejected by the analysis"
  fi
}

check_compiles "$root/tests/thread_safety/ts_positive.cc"
for bad in "$root"/tests/thread_safety/bad_*.cc; do
  check_rejected "$bad"
done

if [ "$failures" -ne 0 ]; then
  echo "thread-safety harness: $failures check(s) failed"
  exit 1
fi
echo "thread-safety harness: all checks passed"
