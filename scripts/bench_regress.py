#!/usr/bin/env python3
"""Compare two BENCH_*.json snapshots and emit a markdown delta table.

Works on every artifact scripts/bench_snapshot.sh produces: documents with
a "benchmarks" array (google-benchmark format and the hand-rolled
engine/tidlist emitters) or a "histograms" array (BENCH_telemetry.json).
Rows are paired by their "name" field; every numeric field present in both
rows becomes one metric line in the table.

Each metric has a direction:

  higher-better  names matching *per_second* — throughput.
  lower-better   time-shaped names (*_time, *_ms, *_seconds, sum, max,
                 p50/p95/..., *_bytes, page_ins, evictions, spills).
  neutral        everything else (iterations, counts, config echoes):
                 reported, never a regression.

A directional metric regresses when it moves the wrong way by more than
the tolerance (default 10%, override with --tolerance or per-metric with
--metric NAME_REGEX=PCT, first match wins). Exit status: 0 when no metric
regressed, 1 on any regression, 2 on usage/shape errors — so CI can diff
a fresh snapshot against the committed one mechanically.

Usage: scripts/bench_regress.py BASELINE.json CURRENT.json
           [--tolerance PCT] [--metric NAME_REGEX=PCT ...] [--all]
       scripts/bench_regress.py --self-test

By default only changed metrics (beyond 0.5%) and added/removed rows are
printed; --all prints every paired metric.
"""

import json
import re
import sys

HIGHER_BETTER_RE = re.compile(r"per_second")
LOWER_BETTER_RE = re.compile(
    r"(_time$|_ms$|_seconds|^sum$|^max$|^p\d+$|_bytes$|^page_ins$"
    r"|^evictions$|^spills$)"
)
# Context keys whose drift makes any comparison suspect.
CONTEXT_KEYS = ("demon_build_type", "num_cpus")
NOISE_FLOOR_PCT = 0.5


def direction(metric):
    if HIGHER_BETTER_RE.search(metric):
        return "higher"
    if LOWER_BETTER_RE.search(metric):
        return "lower"
    return "neutral"


def rows_of(doc, path):
    for key in ("benchmarks", "histograms"):
        if isinstance(doc.get(key), list):
            out = {}
            for row in doc[key]:
                name = row.get("name")
                if isinstance(name, str):
                    out[name] = row
            return out
    raise SystemExit(f"error: {path} has no benchmarks/histograms array")


def tolerance_for(metric, default_pct, overrides):
    for pattern, pct in overrides:
        if pattern.search(metric):
            return pct
    return default_pct


def compare(base_doc, cur_doc, base_path, cur_path, default_pct, overrides,
            show_all):
    """Returns (markdown_lines, num_regressions)."""
    base_rows = rows_of(base_doc, base_path)
    cur_rows = rows_of(cur_doc, cur_path)

    lines = []
    for key in CONTEXT_KEYS:
        b = base_doc.get("context", {}).get(key)
        c = cur_doc.get("context", {}).get(key)
        if b is not None and c is not None and b != c:
            lines.append(f"> **warning**: context `{key}` differs "
                         f"({b!r} vs {c!r}); deltas may be meaningless.")
    if lines:
        lines.append("")

    lines.append("| benchmark | metric | baseline | current | delta | status |")
    lines.append("|---|---|---:|---:|---:|---|")

    regressions = 0
    printed = 0
    for name in sorted(set(base_rows) | set(cur_rows)):
        if name not in cur_rows:
            lines.append(f"| `{name}` | — | — | — | — | removed |")
            printed += 1
            continue
        if name not in base_rows:
            lines.append(f"| `{name}` | — | — | — | — | added |")
            printed += 1
            continue
        base_row, cur_row = base_rows[name], cur_rows[name]
        metrics = [k for k in base_row
                   if k in cur_row and k != "name"
                   and isinstance(base_row[k], (int, float))
                   and isinstance(cur_row[k], (int, float))
                   and not isinstance(base_row[k], bool)]
        for metric in metrics:
            b, c = float(base_row[metric]), float(cur_row[metric])
            if b == 0.0 and c == 0.0:
                continue
            delta_pct = (c - b) / abs(b) * 100.0 if b != 0.0 else float("inf")
            dirn = direction(metric)
            tol = tolerance_for(metric, default_pct, overrides)
            regressed = (
                (dirn == "higher" and delta_pct < -tol)
                or (dirn == "lower" and delta_pct > tol))
            improved = (
                (dirn == "higher" and delta_pct > tol)
                or (dirn == "lower" and delta_pct < -tol))
            if regressed:
                status = f"**regressed** (>{tol:g}%)"
                regressions += 1
            elif improved:
                status = "improved"
            else:
                status = "ok" if dirn != "neutral" else "info"
            if (not show_all and not regressed and not improved
                    and abs(delta_pct) <= NOISE_FLOOR_PCT):
                continue
            delta_str = ("inf" if delta_pct == float("inf")
                         else f"{delta_pct:+.1f}%")
            lines.append(f"| `{name}` | {metric} | {b:g} | {c:g} "
                         f"| {delta_str} | {status} |")
            printed += 1

    if printed == 0:
        lines.append("| — | — | — | — | — | no changes beyond noise floor |")
    return lines, regressions


# (case name, baseline doc, current doc, expected regression count,
# substring that must appear in the rendered table).
SELF_TEST_CASES = [
    ("throughput drop regresses",
     {"benchmarks": [{"name": "a", "blocks_per_second": 100.0}]},
     {"benchmarks": [{"name": "a", "blocks_per_second": 80.0}]},
     1, "**regressed**"),
    ("throughput gain improves",
     {"benchmarks": [{"name": "a", "blocks_per_second": 100.0}]},
     {"benchmarks": [{"name": "a", "blocks_per_second": 130.0}]},
     0, "improved"),
    ("time increase regresses",
     {"benchmarks": [{"name": "a", "real_time": 10.0}]},
     {"benchmarks": [{"name": "a", "real_time": 12.0}]},
     1, "**regressed**"),
    ("within tolerance is ok",
     {"benchmarks": [{"name": "a", "real_time": 10.0}]},
     {"benchmarks": [{"name": "a", "real_time": 10.5}]},
     0, "ok"),
    ("neutral metric never regresses",
     {"benchmarks": [{"name": "a", "iterations": 100}]},
     {"benchmarks": [{"name": "a", "iterations": 5}]},
     0, "info"),
    ("added and removed rows are reported",
     {"benchmarks": [{"name": "old", "real_time": 1.0}]},
     {"benchmarks": [{"name": "new", "real_time": 1.0}]},
     0, "removed"),
    ("histogram sums are lower-better",
     {"histograms": [{"name": "h", "sum": 10.0, "count": 5}]},
     {"histograms": [{"name": "h", "sum": 20.0, "count": 5}]},
     1, "**regressed**"),
    ("context drift warns",
     {"context": {"num_cpus": 8}, "benchmarks": []},
     {"context": {"num_cpus": 1}, "benchmarks": []},
     0, "warning"),
]


def self_test():
    failures = []
    overrides = []
    for name, base, cur, want_regr, want_substr in SELF_TEST_CASES:
        lines, regr = compare(base, cur, "base", "cur", 10.0, overrides,
                              show_all=True)
        text = "\n".join(lines)
        if regr != want_regr:
            failures.append(f"{name}: expected {want_regr} regression(s), "
                            f"got {regr}")
        if want_substr not in text:
            failures.append(f"{name}: {want_substr!r} missing from table")
    # Per-metric override: loosen real_time to 50% so 20% drift passes.
    lines, regr = compare(
        {"benchmarks": [{"name": "a", "real_time": 10.0}]},
        {"benchmarks": [{"name": "a", "real_time": 12.0}]},
        "base", "cur", 10.0, [(re.compile("real_time"), 50.0)],
        show_all=True)
    if regr != 0:
        failures.append("override case: expected 0 regressions, got "
                        f"{regr}")
    for failure in failures:
        print(f"self-test FAIL: {failure}")
    print(f"bench_regress.py: self-test ran {len(SELF_TEST_CASES) + 1} "
          f"cases, {len(failures)} failure(s)")
    return 1 if failures else 0


def main(argv):
    if len(argv) > 1 and argv[1] == "--self-test":
        return self_test()
    default_pct = 10.0
    overrides = []
    show_all = False
    paths = []
    i = 1
    while i < len(argv):
        arg = argv[i]
        if arg == "--tolerance":
            i += 1
            default_pct = float(argv[i])
        elif arg.startswith("--tolerance="):
            default_pct = float(arg.split("=", 1)[1])
        elif arg == "--metric":
            i += 1
            pattern, pct = argv[i].rsplit("=", 1)
            overrides.append((re.compile(pattern), float(pct)))
        elif arg.startswith("--metric="):
            pattern, pct = arg.split("=", 1)[1].rsplit("=", 1)
            overrides.append((re.compile(pattern), float(pct)))
        elif arg == "--all":
            show_all = True
        elif arg.startswith("-"):
            print(f"error: unknown flag {arg}", file=sys.stderr)
            return 2
        else:
            paths.append(arg)
        i += 1
    if len(paths) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(paths[0]) as f:
        base_doc = json.load(f)
    with open(paths[1]) as f:
        cur_doc = json.load(f)
    lines, regressions = compare(base_doc, cur_doc, paths[0], paths[1],
                                 default_pct, overrides, show_all)
    print(f"### {paths[0]} → {paths[1]}\n")
    print("\n".join(lines))
    print(f"\n{regressions} regression(s) beyond tolerance "
          f"(default {default_pct:g}%).")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
