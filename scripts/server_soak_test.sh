#!/usr/bin/env bash
# Kill-and-recover soak test for demon_serve's multi-tenant durability.
#
#   SOAK_TENANTS=1000 scripts/server_soak_test.sh [build-dir]
#
# Two servers host the same deterministic per-tenant record streams
# (demon_load regenerates record i of tenant t as a pure function of
# (seed, t, i)):
#
#   1. Reference run: one uninterrupted server ingests every stream,
#      flushes all tenants durably, and shuts down cleanly.
#   2. Kill run: a server over a second data dir is SIGKILLed mid-load at
#      three different points (early: mid-creation; middle: mid-stream
#      with background flushes in flight; late: mid-checkpoint traffic).
#      After every kill the next incarnation recovers from checkpoint +
#      WAL and the load resumes from each tenant's server-side cursor
#      (--resume), resending at-least-once across the crash boundary.
#
# Tenant checkpoints are a pure function of the record stream (deterministic
# block cuts at flush_records boundaries, no wall-clock metadata), so the
# test passes iff every one of the SOAK_TENANTS per-tenant checkpoints in
# the kill run is byte-identical to the reference run's.
#
# Tunables (env): SOAK_TENANTS (default 1000), SOAK_RECORDS per tenant
# (default 120), SOAK_CONNECTIONS (default 8).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
serve="$build_dir/examples/demon_serve"
load="$build_dir/examples/demon_load"

tenants="${SOAK_TENANTS:-1000}"
records="${SOAK_RECORDS:-120}"
connections="${SOAK_CONNECTIONS:-8}"
flush_records=25
checkpoint_blocks=2
batch=40
seed=42

for bin in "$serve" "$load"; do
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not found; build the repo first" \
         "(cmake -B build -S . && cmake --build build -j)" >&2
    exit 1
  fi
done

work="$(mktemp -d)"
server_pid=""
cleanup() {
  [[ -n "$server_pid" ]] && kill -9 "$server_pid" 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

# Starts demon_serve on an ephemeral port over $1, logging to $2; sets
# $server_pid and $server_port once the listener line appears and a ping
# round-trips.
start_server() {
  local data_dir="$1" log="$2"
  "$serve" --port=0 --data_dir="$data_dir" \
    --flush_records="$flush_records" \
    --checkpoint_blocks="$checkpoint_blocks" > "$log" 2>&1 &
  server_pid=$!
  server_port=""
  for _ in $(seq 1 100); do
    server_port="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
      "$log" | head -1)"
    [[ -n "$server_port" ]] && break
    if ! kill -0 "$server_pid" 2>/dev/null; then
      echo "error: demon_serve exited during startup:" >&2
      cat "$log" >&2
      exit 1
    fi
    sleep 0.1
  done
  if [[ -z "$server_port" ]]; then
    echo "error: demon_serve never printed its port" >&2
    exit 1
  fi
  for _ in $(seq 1 100); do
    "$load" --port="$server_port" --ping >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "error: demon_serve on port $server_port never answered a ping" >&2
  exit 1
}

common_load() {
  "$load" --host=127.0.0.1 --port="$server_port" --tenants="$tenants" \
    --records="$records" --batch="$batch" --connections="$connections" \
    --seed="$seed" "$@"
}

# --- 1. Reference run: uninterrupted ingest + durable shutdown. ---------
ref_dir="$work/reference"
start_server "$ref_dir" "$work/reference.log"
common_load --flush --shutdown
wait "$server_pid"
server_pid=""
echo "reference run: $tenants tenants ingested and shut down cleanly"

# --- 2. Kill run: SIGKILL at three points, recover, resume. -------------
kill_dir="$work/killed"
for kill_after in 0.15 0.45 0.90; do
  start_server "$kill_dir" "$work/kill_${kill_after}.log"
  recovered="$(sed -n 's/.*tenants recovered=\([0-9]*\).*/\1/p' \
    "$work/kill_${kill_after}.log" | head -1)"
  common_load --resume > "$work/load_${kill_after}.log" 2>&1 &
  load_pid=$!
  sleep "$kill_after"
  kill -9 "$server_pid" 2>/dev/null || true
  wait "$server_pid" 2>/dev/null || true
  server_pid=""
  wait "$load_pid" 2>/dev/null || true
  echo "kill@${kill_after}s: SIGKILL delivered" \
       "(incarnation had recovered $recovered tenants)"
done

# Final incarnation: recover everything, finish every stream, flush, stop.
start_server "$kill_dir" "$work/final.log"
common_load --resume --flush --shutdown
wait "$server_pid"
server_pid=""
echo "final incarnation: all streams completed and flushed durably"

# --- 3. Byte-compare every tenant checkpoint. ---------------------------
failures=0
missing=0
for ((t = 0; t < tenants; ++t)); do
  ref_ckpt="$ref_dir/tenants/t$t/checkpoint.demon"
  kill_ckpt="$kill_dir/tenants/t$t/checkpoint.demon"
  if [[ ! -f "$ref_ckpt" || ! -f "$kill_ckpt" ]]; then
    missing=$((missing + 1))
    continue
  fi
  cmp -s "$ref_ckpt" "$kill_ckpt" || failures=$((failures + 1))
done

if [[ "$missing" -ne 0 || "$failures" -ne 0 ]]; then
  echo "server soak: FAIL ($failures checkpoint(s) diverged," \
       "$missing missing of $tenants)" >&2
  exit 1
fi
echo "server soak: all $tenants recovered tenant checkpoints are" \
     "byte-identical to the uninterrupted run"
