#!/usr/bin/env python3
"""Repo-specific C++ lint for the DEMON codebase.

Checks enforced (all are CI-blocking):

  naked-new      `new` expressions outside an immediate smart-pointer wrap.
                 The only sanctioned raw `new` is the private-constructor
                 factory idiom `std::unique_ptr<T>(new T(...))` /
                 `std::shared_ptr<T>(new T(...))` on a single line.
  naked-delete   Any `delete` expression (`= delete` declarations are fine).
                 Ownership in this codebase is RAII-only.
  std-rand       `std::rand` / `srand` / bare `rand(`. All randomness must
                 go through common/random.h so runs stay reproducible.
  nodiscard      Header declarations returning `Status` or `Result<T>` must
                 carry `[[nodiscard]]`: a dropped Status is a swallowed
                 corruption report.
  include-guard  Every header under src/ uses the canonical
                 `DEMON_<PATH>_H_` include guard, with the matching
                 `#define` and a `#endif  // <guard>` trailer.
  wall-timer     Raw `WallTimer` / `AccumulatingTimer` use outside
                 src/common/. Instrument through common/telemetry.h
                 instead (telemetry::ScopedTimer + histograms), so phase
                 timings land in the registry rather than ad-hoc fields.
  tidlist-raw    Raw TID-list storage access (`ItemList(` / `PairList(`
                 accessors or the test-only payload mutators) outside
                 src/tidlist/. Consumers read encoded lists through the
                 lease + view API (`Lease`, `ItemView`, `PairView`) or the
                 decoded copies (`MaterializeItemList` / `MaterializePairList`)
                 so paging and encoding stay invisible to them.
  raw-intrinsic  x86 SIMD intrinsics (`_mm_*` / `_mm256_*` / `_mm512_*`)
                 outside src/tidlist/simd*. All vector code lives behind
                 the tidlist/simd.h dispatch table so scalar fallbacks,
                 CPUID gating, and the differential tests stay in one
                 place.
  metric-name    Telemetry registry lookups (`counter("` / `gauge("` /
                 `histogram("`) whose name literal does not follow the
                 `subsystem/name` convention: lowercase [a-z0-9_]
                 segments joined by `/`, at least two segments. A
                 concatenated name (`counter("monitor/" + name + ...)`)
                 must open with a complete `subsystem/` prefix literal.
                 Keeps the timeline/alert metric namespace greppable and
                 the Perfetto counter tracks grouped by subsystem.
  naked-sync     Raw standard sync primitives (`std::mutex` and friends,
                 `std::lock_guard` / `std::unique_lock` / `std::scoped_lock`,
                 `std::condition_variable`, or including <mutex> /
                 <condition_variable> / <shared_mutex>) outside
                 src/common/sync.h. All locking goes through the annotated
                 demon::Mutex / MutexLock / CondVar wrappers so clang's
                 -Wthread-safety analysis sees every acquisition.
  raw-argv       `argv[...]` indexing outside src/common/. Command lines
                 are declared on a flags::FlagSet (common/flags.h) and
                 parsed with Parse/ParseKnown; positional words go
                 through flags::Positional. Hand-rolled scanning is how
                 typos silently fall back to defaults.

Suppress a finding with `// lint:allow(<check>)` on the offending line.

Usage: scripts/lint.py [root]       (root defaults to the repo checkout)
       scripts/lint.py --self-test  (lint known-bad snippets; each check
                                     must fire exactly where seeded)
"""

import re
import sys
import tempfile
from pathlib import Path

CODE_DIRS = ("src", "tests", "bench", "examples")
HEADER_EXT = {".h"}
SOURCE_EXT = {".h", ".cc", ".cpp"}

SMART_WRAP_RE = re.compile(r"(unique_ptr|shared_ptr)\s*<[^;]*>\s*\(\s*new\b")
NEW_RE = re.compile(r"\bnew\b\s+[A-Za-z_:<(]")
DELETE_RE = re.compile(r"\bdelete\b(\s*\[\s*\])?\s+[A-Za-z_:*(]")
RAND_RE = re.compile(r"\b(std::)?s?rand\s*\(")
NODISCARD_DECL_RE = re.compile(
    r"^\s*(?:virtual\s+|static\s+)*(?:Status|Result<[^;={}]*>)\s+\w+\s*\("
)
GUARD_RE = re.compile(r"^#ifndef\s+(\w+)\s*$")
WALL_TIMER_RE = re.compile(r"\b(WallTimer|AccumulatingTimer)\b")
# Bare `ItemList(` / `PairList(` only: the sanctioned accessors
# (MaterializeItemList, HasPairList, ItemListSize, ...) embed the words
# inside longer identifiers, so `\b` never fires on them.
TIDLIST_RAW_RE = re.compile(
    r"\b(?:ItemList|PairList)\s*\(|\bmutable_item_list_for_test\b"
)
# Raw x86 intrinsics (and the immintrin-family includes that supply them).
INTRINSIC_RE = re.compile(
    r"\b_mm(?:256|512)?_\w+|#\s*include\s*<(?:imm|emm|smm|tmm|nmm|wmm|pmm|x)"
    r"intrin\.h>"
)
# Telemetry registry lookups whose first argument opens with a string
# literal. The stripper blanks literal contents but keeps the quotes, so
# the opening quote still matches; the name is read from the raw line at
# the same offset.
METRIC_CALL_RE = re.compile(r"\b(?:counter|gauge|histogram)\s*\(\s*\"")
# A complete metric name: subsystem/name with optional deeper segments.
METRIC_NAME_RE = re.compile(r"^[a-z0-9_]+(/[a-z0-9_]+)+$")
# The literal head of a concatenated name must be a full `subsystem/`
# (or deeper) prefix ending at a segment boundary.
METRIC_PREFIX_RE = re.compile(r"^[a-z0-9_]+(/[a-z0-9_]+)*/$")
# Raw standard sync primitives and the headers that supply them. Everything
# here has an annotated wrapper in common/sync.h.
NAKED_SYNC_RE = re.compile(
    r"\bstd::(?:recursive_|timed_|recursive_timed_|shared_)?mutex\b"
    r"|\bstd::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b"
    r"|\bstd::condition_variable(?:_any)?\b"
    r"|#\s*include\s*<(?:mutex|condition_variable|shared_mutex)>"
)


# argv indexing outside the flags library.
RAW_ARGV_RE = re.compile(r"\bargv\s*\[")


def is_simd_file(path, root):
    return (path.is_relative_to(root / "src" / "tidlist")
            and path.name.startswith("simd"))


def strip_comments_and_strings(line, in_block_comment):
    """Replaces comment and string-literal contents with spaces.

    Returns (stripped_line, still_in_block_comment). Keeping the original
    length means reported findings still line up with the source.
    """
    out = []
    i = 0
    n = len(line)
    while i < n:
        if in_block_comment:
            end = line.find("*/", i)
            if end < 0:
                out.append(" " * (n - i))
                i = n
            else:
                out.append(" " * (end + 2 - i))
                i = end + 2
                in_block_comment = False
            continue
        two = line[i : i + 2]
        if two == "//":
            out.append(" " * (n - i))
            break
        if two == "/*":
            in_block_comment = True
            i += 2
            out.append("  ")
            continue
        ch = line[i]
        if ch in "\"'":
            quote = ch
            j = i + 1
            while j < n:
                if line[j] == "\\":
                    j += 2
                    continue
                if line[j] == quote:
                    break
                j += 1
            out.append(quote + " " * (min(j, n - 1) - i - 1) + quote)
            i = min(j, n - 1) + 1
            continue
        out.append(ch)
        i += 1
    return "".join(out), in_block_comment


def expected_guard(path, root):
    rel = path.relative_to(root / "src")
    return "DEMON_" + re.sub(r"[./]", "_", str(rel)).upper() + "_"


def allowed(raw_line, check):
    return f"lint:allow({check})" in raw_line


def lint_file(path, root, findings):
    raw_lines = path.read_text(encoding="utf-8").splitlines()
    in_block = False
    code_lines = []
    for raw in raw_lines:
        code, in_block = strip_comments_and_strings(raw, in_block)
        code_lines.append(code)

    def report(lineno, check, message):
        if not allowed(raw_lines[lineno - 1], check):
            findings.append(f"{path.relative_to(root)}:{lineno}: [{check}] {message}")

    for lineno, code in enumerate(code_lines, start=1):
        # The sanctioned factory idiom may wrap after the opening paren, so
        # join the previous line before testing for the smart-pointer wrap.
        wrap_window = code_lines[max(0, lineno - 2)] + " " + code
        if NEW_RE.search(code) and not SMART_WRAP_RE.search(wrap_window):
            report(lineno, "naked-new",
                   "raw `new` outside an immediate smart-pointer wrap")
        if DELETE_RE.search(code) and "= delete" not in code:
            report(lineno, "naked-delete",
                   "raw `delete`; ownership must be RAII")
        if RAND_RE.search(code):
            report(lineno, "std-rand",
                   "use common/random.h, not the C PRNG")
        if (WALL_TIMER_RE.search(code)
                and not path.is_relative_to(root / "src" / "common")):
            report(lineno, "wall-timer",
                   "raw timer outside src/common/; instrument via "
                   "common/telemetry.h (ScopedTimer + histograms)")
        if INTRINSIC_RE.search(code) and not is_simd_file(path, root):
            report(lineno, "raw-intrinsic",
                   "x86 intrinsics outside src/tidlist/simd*; add a kernel "
                   "to the tidlist/simd.h dispatch table instead")
        if (TIDLIST_RAW_RE.search(code)
                and not path.is_relative_to(root / "src" / "tidlist")):
            report(lineno, "tidlist-raw",
                   "raw TID-list storage access outside src/tidlist/; use "
                   "the lease + view API or Materialize{Item,Pair}List")
        # Metric names can wrap after the call's opening paren, so match
        # in a two-line window; stripping preserves lengths, so offsets
        # in the code window address the raw window too.
        next_code = code_lines[lineno] if lineno < len(code_lines) else ""
        next_raw = raw_lines[lineno] if lineno < len(raw_lines) else ""
        code_window = code + "\n" + next_code
        raw_window = raw_lines[lineno - 1] + "\n" + next_raw
        for m in METRIC_CALL_RE.finditer(code_window):
            if m.start() >= len(code):
                break  # starts on the next line; its own pass reports it
            end = raw_window.find('"', m.end())
            if end < 0:
                continue
            literal = raw_window[m.end():end]
            after = code_window[end + 1:].lstrip()
            ok = (METRIC_PREFIX_RE.match(literal) if after.startswith("+")
                  else METRIC_NAME_RE.match(literal))
            if not ok:
                report(lineno, "metric-name",
                       f'metric name "{literal}" is not `subsystem/name` '
                       "(lowercase [a-z0-9_] segments joined by `/`)")
        if (NAKED_SYNC_RE.search(code)
                and path != root / "src" / "common" / "sync.h"):
            report(lineno, "naked-sync",
                   "raw std sync primitive outside src/common/sync.h; use "
                   "the annotated demon::Mutex / MutexLock / CondVar "
                   "wrappers so -Wthread-safety sees the acquisition")
        if (RAW_ARGV_RE.search(code)
                and not path.is_relative_to(root / "src" / "common")):
            report(lineno, "raw-argv",
                   "argv indexing outside src/common/; declare the flags "
                   "on a flags::FlagSet and read positionals via "
                   "flags::Positional")
        if (path.suffix in HEADER_EXT
                and NODISCARD_DECL_RE.match(code)
                and "[[nodiscard]]" not in code_lines[max(0, lineno - 2)]
                and "[[nodiscard]]" not in code):
            report(lineno, "nodiscard",
                   "Status/Result-returning declaration lacks [[nodiscard]]")

    if path.suffix in HEADER_EXT and path.is_relative_to(root / "src"):
        guard = expected_guard(path, root)
        first_directive = next(
            (c.strip() for c in code_lines if c.strip().startswith("#")), "")
        match = GUARD_RE.match(first_directive)
        if not match or match.group(1) != guard:
            findings.append(
                f"{path.relative_to(root)}:1: [include-guard] expected "
                f"`#ifndef {guard}` as the first directive")
        else:
            if f"#define {guard}" not in (c.strip() for c in code_lines):
                findings.append(
                    f"{path.relative_to(root)}:1: [include-guard] missing "
                    f"`#define {guard}`")
            trailer = f"#endif  // {guard}"
            if not any(raw.strip() == trailer for raw in raw_lines):
                findings.append(
                    f"{path.relative_to(root)}:{len(raw_lines)}: "
                    f"[include-guard] missing `{trailer}` trailer")


# (case name, repo-relative path, file content, checks expected to fire).
# One seeded violation per check plus negative controls, exercised by
# --self-test against a throwaway tree — proves each regex still bites
# before CI trusts a clean run.
SELF_TEST_CASES = [
    ("naked-new fires", "src/core/a.cc",
     "void F() {\n  auto* p = new Foo();\n  Use(p);\n}\n",
     ["naked-new"]),
    ("factory idiom is sanctioned", "src/core/b.cc",
     "auto p = std::shared_ptr<Foo>(new Foo());\n",
     []),
    ("naked-delete fires", "src/core/c.cc",
     "void F(Foo* p) {\n  delete p;\n}\n",
     ["naked-delete"]),
    ("std-rand fires", "src/core/d.cc",
     "int F() {\n  return std::rand();\n}\n",
     ["std-rand"]),
    ("wall-timer fires outside src/common", "src/core/e.cc",
     "void F() {\n  WallTimer timer;\n}\n",
     ["wall-timer"]),
    ("raw-intrinsic fires outside simd files", "src/core/f.cc",
     "int F(__m128i a, __m128i b) {\n  return _mm_extract_epi32("
     "_mm_add_epi32(a, b), 0);\n}\n",
     ["raw-intrinsic"]),
    ("tidlist-raw fires outside src/tidlist", "src/core/g.cc",
     "void F(const BlockTidLists& lists) {\n  Use(lists.ItemList(3));\n}\n",
     ["tidlist-raw"]),
    ("nodiscard fires on a Status declaration", "src/demo.h",
     "#ifndef DEMON_DEMO_H_\n#define DEMON_DEMO_H_\n"
     "Status Load();\n"
     "#endif  // DEMON_DEMO_H_\n",
     ["nodiscard"]),
    ("include-guard fires on a wrong guard", "src/guard.h",
     "#ifndef WRONG_H_\n#define WRONG_H_\n#endif  // WRONG_H_\n",
     ["include-guard"]),
    ("metric-name fires on a slashless name", "src/core/m.cc",
     "void F(telemetry::TelemetryRegistry* r) {\n"
     "  r->counter(\"blocks\")->Add(1);\n}\n",
     ["metric-name"]),
    ("metric-name fires on an uppercase segment", "src/core/n.cc",
     "void F(telemetry::TelemetryRegistry* r) {\n"
     "  r->histogram(\"Engine/response_seconds\");\n}\n",
     ["metric-name"]),
    ("subsystem/name literal is sanctioned", "src/core/o.cc",
     "void F(telemetry::TelemetryRegistry* r) {\n"
     "  r->gauge(\"evolution/borders/churn\")->Set(0.5);\n}\n",
     []),
    ("concatenation with a subsystem/ prefix is sanctioned", "src/core/p.cc",
     "void F(telemetry::TelemetryRegistry* r, const std::string& n) {\n"
     "  r->histogram(\"monitor/\" + n + \"/response_seconds\");\n}\n",
     []),
    ("concatenation without a trailing slash fires", "src/core/q.cc",
     "void F(telemetry::TelemetryRegistry* r, const std::string& n) {\n"
     "  r->counter(\"monitor\" + n);\n}\n",
     ["metric-name"]),
    ("wrapped metric name is still checked", "src/core/r.cc",
     "void F(telemetry::TelemetryRegistry* r) {\n"
     "  r->counter(\n      \"badname\");\n}\n",
     ["metric-name"]),
    ("naked-sync fires on a raw mutex", "src/core/h.cc",
     "std::mutex mu;\nstd::lock_guard<std::mutex> lock(mu);\n",
     ["naked-sync"]),
    ("naked-sync fires on the header include", "src/core/i.cc",
     "#include <condition_variable>\n",
     ["naked-sync"]),
    ("naked-sync respects lint:allow", "src/core/j.cc",
     "std::mutex mu;  // lint:allow(naked-sync)\n",
     []),
    ("naked-sync exempts common/sync.h", "src/common/sync.h",
     "#ifndef DEMON_COMMON_SYNC_H_\n#define DEMON_COMMON_SYNC_H_\n"
     "#include <mutex>\nstd::mutex mu;\n"
     "#endif  // DEMON_COMMON_SYNC_H_\n",
     []),
    ("comments and strings never fire", "src/core/k.cc",
     "// std::mutex in a comment\n"
     "const char* s = \"std::condition_variable\";\n",
     []),
    ("raw-argv fires on argv indexing", "src/core/s.cc",
     "int main(int argc, char** argv) {\n"
     "  const char* first = argv[1];\n  Use(first);\n}\n",
     ["raw-argv"]),
    ("raw-argv exempts src/common", "src/common/args.cc",
     "const char* F(char** argv) {\n  return argv[0];\n}\n",
     []),
    ("raw-argv respects lint:allow", "src/core/t.cc",
     "const char* F(char** argv) {\n"
     "  return argv[0];  // lint:allow(raw-argv)\n}\n",
     []),
    ("clean file stays clean", "src/core/l.cc",
     "void F() {}\n",
     []),
]


def self_test():
    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        for name, rel, content, expected in SELF_TEST_CASES:
            path = root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(content, encoding="utf-8")
            findings = []
            lint_file(path, root, findings)
            got = sorted({m.group(1) for f in findings
                          if (m := re.search(r"\[([a-z-]+)\]", f))})
            if got != sorted(expected):
                failures.append(
                    f"{name}: expected {sorted(expected)}, got {got}")
    for failure in failures:
        print(f"self-test FAIL: {failure}")
    print(f"lint.py: self-test ran {len(SELF_TEST_CASES)} cases, "
          f"{len(failures)} failure(s)")
    return 1 if failures else 0


def main():
    if len(sys.argv) > 1 and sys.argv[1] == "--self-test":
        return self_test()
    root = Path(sys.argv[1]).resolve() if len(sys.argv) > 1 else \
        Path(__file__).resolve().parent.parent
    files = sorted(
        p for d in CODE_DIRS for p in (root / d).rglob("*")
        if p.suffix in SOURCE_EXT and p.is_file())
    if not files:
        print(f"lint.py: no sources found under {root}", file=sys.stderr)
        return 2
    findings = []
    for path in files:
        lint_file(path, root, findings)
    for finding in findings:
        print(finding)
    print(f"lint.py: checked {len(files)} files, "
          f"{len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
